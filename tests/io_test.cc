#include "graph/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "tensor/nn.h"
#include "tensor/serialization.h"
#include "util/rng.h"

namespace cpdg {
namespace {

using graph::Event;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
}

TEST(EventsCsvTest, RoundTrip) {
  std::vector<Event> events = {
      {0, 5, 1.25, 0, -1},
      {3, 4, 2.5, 1, 0},
      {2, 1, 3.75, 0, 1},
  };
  std::string path = TempPath("events_roundtrip.csv");
  ASSERT_TRUE(graph::WriteEventsCsv(path, events).ok());
  auto loaded = graph::ReadEventsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(loaded.value()[i].src, events[i].src);
    EXPECT_EQ(loaded.value()[i].dst, events[i].dst);
    EXPECT_DOUBLE_EQ(loaded.value()[i].time, events[i].time);
    EXPECT_EQ(loaded.value()[i].edge_type, events[i].edge_type);
    EXPECT_EQ(loaded.value()[i].label, events[i].label);
  }
}

TEST(EventsCsvTest, MissingFileIsIoError) {
  auto r = graph::ReadEventsCsv("/nonexistent/path/events.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(EventsCsvTest, BadHeaderRejected) {
  std::string path = TempPath("bad_header.csv");
  WriteFile(path, "user,item\n1,2\n");
  auto r = graph::ReadEventsCsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(EventsCsvTest, MalformedRowRejectedWithLineNumber) {
  std::string path = TempPath("bad_row.csv");
  WriteFile(path, "src,dst,time,edge_type,label\n1,2,notanumber,0,0\n");
  auto r = graph::ReadEventsCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(r.status().message().find("non-numeric time"),
            std::string::npos);
}

TEST(EventsCsvTest, WrongFieldCountRejectedWithLineNumber) {
  std::string path = TempPath("bad_fields.csv");
  WriteFile(path,
            "src,dst,time,edge_type,label\n1,2,0.5,0,0\n1,2,0.75,0\n");
  auto r = graph::ReadEventsCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(r.status().message().find("expected 5 fields, got 4"),
            std::string::npos);
}

TEST(EventsCsvTest, NegativeNodeIdRejectedWithLineNumber) {
  std::string path = TempPath("bad_id.csv");
  WriteFile(path, "src,dst,time,edge_type,label\n1,-2,0.5,0,0\n");
  auto r = graph::ReadEventsCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
}

TEST(EventsCsvTest, NonNumericIdRejectedWithOffendingField) {
  std::string path = TempPath("bad_src.csv");
  WriteFile(path, "src,dst,time,edge_type,label\nuser7,2,0.5,0,0\n");
  auto r = graph::ReadEventsCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("non-numeric src id"),
            std::string::npos);
  EXPECT_NE(r.status().message().find("'user7'"), std::string::npos);
}

TEST(EventsCsvTest, StreamingStopsAtFirstBadRowAfterGoodOnes) {
  std::string path = TempPath("stream_stop.csv");
  WriteFile(path,
            "src,dst,time,edge_type,label\n"
            "1,2,0.5,0,0\n"
            "3,4,0.75,1,0\n"
            "oops\n");
  int64_t rows_seen = 0;
  auto status = graph::StreamEventsCsv(path, [&](const Event&) {
    ++rows_seen;
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(rows_seen, 2);  // valid prefix was delivered before the error
  EXPECT_NE(status.message().find("line 4"), std::string::npos);
}

TEST(EventsCsvTest, CallbackErrorAbortsStream) {
  std::string path = TempPath("stream_abort.csv");
  WriteFile(path,
            "src,dst,time,edge_type,label\n1,2,0.5,0,0\n3,4,0.75,0,0\n");
  auto status = graph::StreamEventsCsv(path, [](const Event&) {
    return Status::Internal("sink full");
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(JodieCsvTest, ParsesAndRebasesItems) {
  std::string path = TempPath("jodie.csv");
  WriteFile(path,
            "user_id,item_id,timestamp,state_label,"
            "comma_separated_list_of_features\n"
            "0,0,0.0,0,0.1,0.2\n"
            "1,2,10.0,0,0.1,0.2\n"
            "0,1,20.5,1,0.3,0.4\n");
  auto ds = graph::ReadJodieCsv(path);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().num_users, 2);
  EXPECT_EQ(ds.value().num_items, 3);
  EXPECT_EQ(ds.value().num_nodes(), 5);
  ASSERT_EQ(ds.value().events.size(), 3u);
  // Item ids are re-based after users.
  EXPECT_EQ(ds.value().events[0].dst, 2);
  EXPECT_EQ(ds.value().events[1].dst, 4);
  EXPECT_EQ(ds.value().events[2].label, 1);
}

TEST(JodieCsvTest, LoadsDirectlyIntoGraph) {
  std::string path = TempPath("jodie_graph.csv");
  WriteFile(path,
            "user_id,item_id,timestamp,state_label\n"
            "0,0,5.0,0\n"
            "1,0,1.0,0\n");
  auto g = graph::LoadJodieGraph(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 3);
  EXPECT_EQ(g.value().num_events(), 2);
  // Events re-sorted chronologically.
  EXPECT_EQ(g.value().event(0).src, 1);
}

TEST(JodieCsvTest, RejectsNegativeIds) {
  std::string path = TempPath("jodie_neg.csv");
  WriteFile(path, "h\n-1,0,1.0,0\n");
  EXPECT_FALSE(graph::ReadJodieCsv(path).ok());
}

TEST(JodieCsvTest, RejectsEmptyData) {
  std::string path = TempPath("jodie_empty.csv");
  WriteFile(path, "header only\n");
  EXPECT_FALSE(graph::ReadJodieCsv(path).ok());
}

TEST(SerializationTest, TensorRoundTrip) {
  Rng rng(1);
  std::vector<tensor::Tensor> tensors = {
      tensor::Tensor::RandomUniform(3, 4, 1.0f, &rng),
      tensor::Tensor::RandomUniform(1, 7, 2.0f, &rng),
  };
  std::string path = TempPath("tensors.ckpt");
  ASSERT_TRUE(tensor::SaveTensors(tensors, path).ok());
  auto loaded = tensor::LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  for (size_t i = 0; i < tensors.size(); ++i) {
    ASSERT_EQ(loaded.value()[i].rows(), tensors[i].rows());
    ASSERT_EQ(loaded.value()[i].cols(), tensors[i].cols());
    for (int64_t j = 0; j < tensors[i].size(); ++j) {
      EXPECT_EQ(loaded.value()[i].data()[j], tensors[i].data()[j]);
    }
  }
}

TEST(SerializationTest, ModuleRoundTrip) {
  Rng rng1(2), rng2(3);
  tensor::Mlp source({4, 8, 2}, &rng1);
  tensor::Mlp target({4, 8, 2}, &rng2);
  std::string path = TempPath("module.ckpt");
  ASSERT_TRUE(tensor::SaveParameters(source, path).ok());
  ASSERT_TRUE(tensor::LoadParameters(&target, path).ok());
  auto ps = source.Parameters();
  auto pt = target.Parameters();
  for (size_t i = 0; i < ps.size(); ++i) {
    for (int64_t j = 0; j < ps[i].size(); ++j) {
      EXPECT_EQ(ps[i].data()[j], pt[i].data()[j]);
    }
  }
}

TEST(SerializationTest, ShapeMismatchRefusedAtomically) {
  Rng rng(4);
  tensor::Mlp source({4, 8, 2}, &rng);
  tensor::Mlp other({4, 6, 2}, &rng);  // different hidden width
  std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(tensor::SaveParameters(source, path).ok());
  auto before = other.Parameters()[0].Clone();
  Status s = tensor::LoadParameters(&other, path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // Target untouched on failure.
  auto after = other.Parameters()[0];
  for (int64_t j = 0; j < before.size(); ++j) {
    EXPECT_EQ(before.data()[j], after.data()[j]);
  }
}

TEST(SerializationTest, CorruptFileRejected) {
  std::string path = TempPath("corrupt.ckpt");
  WriteFile(path, "this is not a checkpoint");
  EXPECT_FALSE(tensor::LoadTensors(path).ok());
}

TEST(SerializationTest, TruncatedPayloadRejected) {
  Rng rng(5);
  std::vector<tensor::Tensor> tensors = {
      tensor::Tensor::RandomUniform(10, 10, 1.0f, &rng)};
  std::string path = TempPath("trunc.ckpt");
  ASSERT_TRUE(tensor::SaveTensors(tensors, path).ok());
  // Truncate the file in the middle of the payload.
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
  }
  EXPECT_FALSE(tensor::LoadTensors(path).ok());
}

}  // namespace
}  // namespace cpdg
