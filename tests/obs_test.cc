// Unit tests for the observability layer (src/obs): histogram bucketing
// edge cases, registry JSON, scoped-span nesting and ordering,
// cross-thread span-merge determinism at 1 vs 4 threads, the
// disabled-mode zero-cost contract (no allocations, nothing recorded),
// and the Chrome trace-event JSON round trip.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace_export.h"
#include "util/atomic_file.h"
#include "util/thread_pool.h"

// Allocation probe for the disabled-mode test: every operator new on this
// thread bumps a thread-local counter. Worker threads and gtest internals
// do not disturb a measurement taken around single-threaded code.
namespace {
thread_local int64_t tl_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++tl_alloc_count;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  ++tl_alloc_count;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cpdg {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::ParsedTraceEvent;
using obs::Profiler;
using obs::ScopedSpan;
using obs::SpanEvent;
using obs::SpanStats;

// --- Histogram bucketing --------------------------------------------------

TEST(HistogramTest, NonPositiveAndNanGoToUnderflowBucket) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-1e300), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0);
}

TEST(HistogramTest, ExactPowersOfTwoLandOnTheirOwnUpperEdge) {
  for (int e = Histogram::kMinExponent + 1; e <= Histogram::kMaxExponent;
       ++e) {
    double v = std::ldexp(1.0, e);
    int b = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketUpperEdge(b), v) << "value 2^" << e;
  }
}

TEST(HistogramTest, ValuesJustAboveAnEdgeMoveToTheNextBucket) {
  double one = 1.0;
  int b_one = Histogram::BucketIndex(one);
  int b_above = Histogram::BucketIndex(std::nextafter(one, 2.0));
  EXPECT_EQ(b_above, b_one + 1);
  // ...and just below stays in the lower bucket.
  EXPECT_EQ(Histogram::BucketIndex(std::nextafter(one, 0.0)), b_one);
}

TEST(HistogramTest, UnderflowAndOverflowEdges) {
  double lo = std::ldexp(1.0, Histogram::kMinExponent);
  EXPECT_EQ(Histogram::BucketIndex(lo), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::nextafter(lo, 1.0)), 1);
  double hi = std::ldexp(1.0, Histogram::kMaxExponent);
  EXPECT_EQ(Histogram::BucketIndex(hi), Histogram::kNumBuckets - 2);
  EXPECT_EQ(Histogram::BucketIndex(std::nextafter(hi, 1e300)),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<double>::infinity()),
            Histogram::kNumBuckets - 1);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperEdge(Histogram::kNumBuckets - 1)));
}

TEST(HistogramTest, CountSumMinMaxAndReset) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  h.Observe(2.0);
  h.Observe(0.5);
  h.Observe(8.0);
  h.Observe(-3.0);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 7.5);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_EQ(h.bucket_count(Histogram::BucketIndex(2.0)), 1);
  EXPECT_EQ(h.bucket_count(0), 1);  // the -3.0
  int64_t total = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) total += h.bucket_count(b);
  EXPECT_EQ(total, h.count());
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

// --- Registry -------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  obs::Counter& a = MetricsRegistry::Global().counter("obs_test.same");
  obs::Counter& b = MetricsRegistry::Global().counter("obs_test.same");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(MetricsRegistryTest, JsonSnapshotIsDeterministicAndStructured) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.counter("obs_test.json_counter").Add(7);
  registry.gauge("obs_test.json_gauge").Set(2.5);
  registry.histogram("obs_test.json_histogram").Observe(3.0);
  std::string json = registry.ToJson();
  EXPECT_EQ(json, registry.ToJson());  // deterministic snapshot
  EXPECT_NE(json.find("\"obs_test.json_counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_gauge\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"le\": 4"), std::string::npos);  // 3.0's bucket edge
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

// --- Span nesting and ordering --------------------------------------------

TEST(ProfilerTest, NestedSpansRecordDepthAndEnclosure) {
  obs::SetTraceEnabled(true);
  Profiler::Global().Clear();
  {
    CPDG_TRACE_SPAN("obs_test/outer");
    {
      CPDG_TRACE_SPAN("obs_test/inner_a");
    }
    {
      CPDG_TRACE_SPAN("obs_test/inner_b");
      { CPDG_TRACE_SPAN("obs_test/leaf"); }
    }
  }
  obs::SetTraceEnabled(false);

  std::vector<SpanEvent> events = Profiler::Global().Snapshot();
  ASSERT_EQ(events.size(), 4u);

  std::map<std::string, SpanEvent> by_name;
  for (const SpanEvent& e : events) by_name[e.name] = e;
  ASSERT_EQ(by_name.size(), 4u);

  const SpanEvent& outer = by_name["obs_test/outer"];
  const SpanEvent& inner_a = by_name["obs_test/inner_a"];
  const SpanEvent& inner_b = by_name["obs_test/inner_b"];
  const SpanEvent& leaf = by_name["obs_test/leaf"];

  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner_a.depth, 1);
  EXPECT_EQ(inner_b.depth, 1);
  EXPECT_EQ(leaf.depth, 2);

  // Children are temporally enclosed by their parent.
  for (const SpanEvent* child : {&inner_a, &inner_b, &leaf}) {
    EXPECT_GE(child->start_us, outer.start_us);
    EXPECT_LE(child->start_us + child->dur_us,
              outer.start_us + outer.dur_us);
  }
  EXPECT_GE(leaf.start_us, inner_b.start_us);
  // inner_a ran before inner_b.
  EXPECT_LE(inner_a.start_us, inner_b.start_us);

  // Snapshot order is sorted by start time (depth-tiebroken), so the
  // outer span comes first.
  EXPECT_STREQ(events[0].name, "obs_test/outer");
}

TEST(ProfilerTest, DepthUnwindsAcrossDisableMidSpan) {
  obs::SetTraceEnabled(true);
  Profiler::Global().Clear();
  {
    CPDG_TRACE_SPAN("obs_test/interrupted");
    obs::SetTraceEnabled(false);  // span open while tracing turns off
  }
  obs::SetTraceEnabled(true);
  {
    CPDG_TRACE_SPAN("obs_test/after");
  }
  obs::SetTraceEnabled(false);
  std::vector<SpanEvent> events = Profiler::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "obs_test/after");
  EXPECT_EQ(events[0].depth, 0);  // depth bookkeeping unwound correctly
}

// --- Cross-thread merge determinism ---------------------------------------

std::map<std::string, SpanStats> RunChunkedWorkload(int num_threads) {
  obs::SetTraceEnabled(true);
  Profiler::Global().Clear();
  util::ThreadPool pool(num_threads);
  pool.ParallelFor(0, 8, 1, [](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      CPDG_TRACE_SPAN("obs_test/chunk");
      CPDG_TRACE_SPAN("obs_test/chunk_body");
    }
  });
  std::map<std::string, SpanStats> stats =
      Profiler::Global().AggregateByName();
  obs::SetTraceEnabled(false);
  return stats;
}

TEST(ProfilerTest, CrossThreadAggregationIsThreadCountInvariant) {
  std::map<std::string, SpanStats> serial = RunChunkedWorkload(1);
  std::map<std::string, SpanStats> parallel = RunChunkedWorkload(4);

  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(parallel.size(), 2u);
  EXPECT_EQ(serial["obs_test/chunk"].count, 8);
  EXPECT_EQ(serial["obs_test/chunk_body"].count, 8);
  // The static-chunking contract: the same spans exist at any thread
  // count, and the merged per-name view lists them identically.
  for (const auto& [name, s] : serial) {
    ASSERT_NE(parallel.find(name), parallel.end()) << name;
    EXPECT_EQ(parallel[name].count, s.count) << name;
  }
  // Workers carried distinct tids in the parallel run but merged into the
  // same name keys; nesting depth survives on the worker threads too.
  std::map<std::string, SpanEvent> by_name;
  RunChunkedWorkload(4);
  obs::SetTraceEnabled(true);
  for (const SpanEvent& e : Profiler::Global().Snapshot()) {
    if (std::string(e.name) == "obs_test/chunk_body") {
      EXPECT_EQ(e.depth, 1);
    } else {
      EXPECT_EQ(e.depth, 0);
    }
  }
  obs::SetTraceEnabled(false);
}

// --- Disabled mode --------------------------------------------------------

TEST(ProfilerTest, DisabledSpansAllocateNothingAndEmitNothing) {
  obs::SetTraceEnabled(false);
  Profiler::Global().Clear();

  int64_t before = tl_alloc_count;
  for (int i = 0; i < 1000; ++i) {
    CPDG_TRACE_SPAN("obs_test/disabled");
    CPDG_TRACE_SPAN(nullptr);  // conditional-instrumentation form
  }
  int64_t after = tl_alloc_count;
  EXPECT_EQ(after, before) << "disabled spans must not allocate";

  EXPECT_TRUE(Profiler::Global().Snapshot().empty());
  EXPECT_TRUE(Profiler::Global().AggregateByName().empty());
  EXPECT_EQ(Profiler::Global().dropped_events(), 0);
}

TEST(ProfilerTest, BufferOverflowDropsAndCounts) {
  obs::SetTraceEnabled(true);
  Profiler::Global().Clear();
  Profiler& profiler = Profiler::Global();
  for (int64_t i = 0; i < Profiler::kMaxEventsPerThread + 10; ++i) {
    profiler.Record("obs_test/flood", i, 1, 0);
  }
  EXPECT_EQ(profiler.dropped_events(), 10);
  EXPECT_EQ(static_cast<int64_t>(profiler.Snapshot().size()),
            Profiler::kMaxEventsPerThread);
  obs::SetTraceEnabled(false);
  Profiler::Global().Clear();
}

// --- Chrome trace round trip ----------------------------------------------

TEST(TraceExportTest, RoundTripsThroughParser) {
  obs::SetTraceEnabled(true);
  Profiler::Global().Clear();
  {
    CPDG_TRACE_SPAN("obs_test/export \"quoted\"\n");
    { CPDG_TRACE_SPAN("obs_test/export_child"); }
  }
  obs::SetTraceEnabled(false);

  std::vector<SpanEvent> events = Profiler::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  std::string json = obs::ChromeTraceJson(events);

  Result<std::vector<ParsedTraceEvent>> parsed = obs::ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    const ParsedTraceEvent& p = parsed.value()[i];
    EXPECT_EQ(p.name, events[i].name);  // escapes round-trip
    EXPECT_EQ(p.ph, "X");               // complete events only
    EXPECT_EQ(p.ts_us, events[i].start_us);
    EXPECT_EQ(p.dur_us, events[i].dur_us);
    EXPECT_EQ(p.pid, 1);
    EXPECT_EQ(p.tid, events[i].tid);
  }
}

TEST(TraceExportTest, WriteReadBackAndParseFromDisk) {
  obs::SetTraceEnabled(true);
  Profiler::Global().Clear();
  { CPDG_TRACE_SPAN("obs_test/disk"); }
  obs::SetTraceEnabled(false);

  std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(Profiler::Global().WriteChromeTrace(path).ok());
  std::string json;
  ASSERT_TRUE(util::ReadFileToString(path, &json).ok());
  Result<std::vector<ParsedTraceEvent>> parsed = obs::ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0].name, "obs_test/disk");
  std::remove(path.c_str());
}

TEST(TraceExportTest, EmptyTraceIsValid) {
  std::string json = obs::ChromeTraceJson({});
  Result<std::vector<ParsedTraceEvent>> parsed = obs::ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().empty());
}

TEST(TraceExportTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(obs::ParseChromeTrace("").ok());
  EXPECT_FALSE(obs::ParseChromeTrace("[]").ok());
  EXPECT_FALSE(obs::ParseChromeTrace("{").ok());
  EXPECT_FALSE(obs::ParseChromeTrace("{}").ok());  // no traceEvents
  EXPECT_FALSE(obs::ParseChromeTrace("{\"traceEvents\": 5}").ok());
  EXPECT_FALSE(
      obs::ParseChromeTrace("{\"traceEvents\": [{\"ph\": \"X\"}]}").ok());
  EXPECT_FALSE(obs::ParseChromeTrace(
                   "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"X\", "
                   "\"ts\": 1}]} garbage")
                   .ok());
  // Truncated mid-event.
  EXPECT_FALSE(obs::ParseChromeTrace(
                   "{\"traceEvents\": [{\"name\": \"a\", \"ph\":")
                   .ok());
  // Valid minimal document with an extra unknown key: accepted.
  EXPECT_TRUE(obs::ParseChromeTrace(
                  "{\"other\": {\"x\": [1, 2]}, \"traceEvents\": "
                  "[{\"name\": \"a\", \"ph\": \"X\", \"ts\": 1, "
                  "\"extra\": null}]}")
                  .ok());
}

}  // namespace
}  // namespace cpdg
