// Tests pinning down the CPDG objective's arithmetic (Eq. 17 weighting,
// Eq. 6-8 probability identities, triplet-loss boundary cases) and the
// edge cases of the loss functions.

#include <cmath>

#include <gtest/gtest.h>

#include "core/pretrainer.h"
#include "sampler/samplers.h"
#include "tensor/losses.h"
#include "tensor/ops.h"

namespace cpdg {
namespace {

using tensor::Tensor;

TEST(TripletLossTest, ZeroWhenNegativeFarBeyondMargin) {
  Tensor anchor = Tensor::Zeros(2, 3);
  Tensor positive = Tensor::Zeros(2, 3);
  Tensor negative = Tensor::Full(2, 3, 100.0f);
  Tensor loss = tensor::TripletMarginLoss(anchor, positive, negative, 1.0f);
  EXPECT_FLOAT_EQ(loss.item(), 0.0f);
}

TEST(TripletLossTest, EqualsMarginWhenAllCoincide) {
  Tensor x = Tensor::Full(2, 3, 1.0f);
  Tensor loss = tensor::TripletMarginLoss(x, x, x, 0.7f);
  EXPECT_NEAR(loss.item(), 0.7f, 1e-5f);
}

TEST(TripletLossTest, KnownValue) {
  // d(a,p) = 2, d(a,n) = 1, margin 0.5 -> loss = 1.5.
  Tensor a = Tensor::FromVector(1, 1, {0.0f});
  Tensor p = Tensor::FromVector(1, 1, {2.0f});
  Tensor n = Tensor::FromVector(1, 1, {1.0f});
  Tensor loss = tensor::TripletMarginLoss(a, p, n, 0.5f);
  EXPECT_NEAR(loss.item(), 1.5f, 1e-5f);
}

TEST(BceTest, MatchesClosedForm) {
  // logit 0 -> p 0.5 -> BCE ln 2 regardless of label.
  Tensor logits = Tensor::Zeros(4, 1);
  Tensor targets = Tensor::FromVector(4, 1, {1, 0, 1, 0});
  Tensor loss = tensor::BceWithLogitsLoss(logits, targets);
  EXPECT_NEAR(loss.item(), std::log(2.0f), 1e-5f);
}

TEST(BceTest, ConfidentCorrectIsNearZero) {
  Tensor logits = Tensor::FromVector(2, 1, {12.0f, -12.0f});
  Tensor targets = Tensor::FromVector(2, 1, {1.0f, 0.0f});
  EXPECT_LT(tensor::BceWithLogitsLoss(logits, targets).item(), 1e-3f);
}

TEST(BceTest, ExtremeLogitsStayFinite) {
  Tensor logits = Tensor::FromVector(2, 1, {1000.0f, -1000.0f});
  Tensor targets = Tensor::FromVector(2, 1, {0.0f, 1.0f});
  Tensor loss = tensor::BceWithLogitsLoss(logits, targets);
  EXPECT_TRUE(std::isfinite(loss.item()));
}

TEST(Eq6Through8Test, ChronologicalAndReverseAreMirrors) {
  // For event times whose normalized positions (Eq. 6) are symmetric
  // around 1/2, the reverse-chronological distribution is the exact mirror
  // of the chronological one. times below normalize to {0, .25, .5, .75,
  // 1} for t = 1.0.
  std::vector<double> times = {0.1, 0.325, 0.55, 0.775, 1.0 - 1e-12};
  auto p_chrono = sampler::TemporalProbabilities(
      times, 1.0, sampler::TemporalBias::kChronological, 0.3);
  auto p_reverse = sampler::TemporalProbabilities(
      times, 1.0, sampler::TemporalBias::kReverseChronological, 0.3);
  for (size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(p_chrono[i], p_reverse[times.size() - 1 - i], 1e-9)
        << "mirror mismatch at " << i;
  }
}

TEST(Eq6Through8Test, NormalizedTimeIsScaleInvariant) {
  // Eq. (6) normalizes by (t - min T), so shifting and scaling all times
  // must not change the probabilities.
  std::vector<double> times = {1.0, 2.0, 4.0};
  std::vector<double> scaled = {100.0, 200.0, 400.0};
  // scaled = 100 * times: same normalized positions when t scales too.
  auto p1 = sampler::TemporalProbabilities(
      times, 5.0, sampler::TemporalBias::kChronological, 0.2);
  auto p2 = sampler::TemporalProbabilities(
      scaled, 500.0, sampler::TemporalBias::kChronological, 0.2);
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_NEAR(p1[i], p2[i], 1e-9);
  }
}

TEST(Eq17Test, BetaZeroDropsStructuralTerm) {
  // With beta = 0, disabling SC must not change the objective structure:
  // the pretrainer must accept both configurations.
  Rng rng(1);
  core::CpdgConfig config;
  config.beta = 0.0f;
  core::CpdgPretrainer p1(config, &rng);
  config.beta = 1.0f;
  core::CpdgPretrainer p2(config, &rng);
  EXPECT_EQ(p1.config().beta, 0.0f);
  EXPECT_EQ(p2.config().beta, 1.0f);
}

TEST(Eq17Test, InvalidBetaRejected) {
  Rng rng(2);
  core::CpdgConfig config;
  config.beta = 1.5f;
  EXPECT_DEATH(core::CpdgPretrainer(config, &rng), "beta");
}

TEST(MseTest, KnownValue) {
  Tensor a = Tensor::FromVector(1, 2, {1.0f, 3.0f});
  Tensor b = Tensor::FromVector(1, 2, {2.0f, 1.0f});
  // ((1)^2 + (2)^2) / 2 = 2.5
  EXPECT_NEAR(tensor::MseLoss(a, b).item(), 2.5f, 1e-6f);
}

TEST(RowDistanceTest, KnownValues) {
  Tensor a = Tensor::FromVector(2, 2, {0, 0, 1, 1});
  Tensor b = Tensor::FromVector(2, 2, {3, 4, 1, 1});
  Tensor d = tensor::RowEuclideanDistance(a, b);
  EXPECT_NEAR(d.at(0, 0), 5.0f, 1e-5f);
  EXPECT_NEAR(d.at(1, 0), 0.0f, 1e-3f);
}

}  // namespace
}  // namespace cpdg
