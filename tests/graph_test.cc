#include "graph/temporal_graph.h"

#include <limits>

#include <gtest/gtest.h>

#include "graph/batching.h"

namespace cpdg::graph {
namespace {

std::vector<Event> MakeEvents() {
  // Deliberately unsorted input.
  return {
      {0, 1, 5.0}, {0, 2, 1.0}, {1, 2, 3.0}, {0, 1, 2.0}, {2, 3, 4.0},
  };
}

TEST(TemporalGraphTest, CreateSortsEvents) {
  auto g = TemporalGraph::Create(4, MakeEvents()).ValueOrDie();
  EXPECT_EQ(g.num_events(), 5);
  for (int64_t i = 1; i < g.num_events(); ++i) {
    EXPECT_LE(g.event(i - 1).time, g.event(i).time);
  }
  EXPECT_EQ(g.min_time(), 1.0);
  EXPECT_EQ(g.max_time(), 5.0);
}

TEST(TemporalGraphTest, RejectsBadNodeIds) {
  auto r = TemporalGraph::Create(2, {{0, 5, 1.0}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  auto r2 = TemporalGraph::Create(0, {});
  EXPECT_FALSE(r2.ok());
}

TEST(TemporalGraphTest, NeighborsBeforeRespectsTime) {
  auto g = TemporalGraph::Create(4, MakeEvents()).ValueOrDie();
  // Node 0 interacts at t=1 (with 2), t=2 (with 1), t=5 (with 1).
  auto view = g.NeighborsBefore(0, 3.0);
  ASSERT_EQ(view.count, 2);
  EXPECT_EQ(view[0].node, 2);
  EXPECT_EQ(view[0].time, 1.0);
  EXPECT_EQ(view[1].node, 1);
  EXPECT_EQ(view[1].time, 2.0);
  // Strictly before: an event at exactly t is excluded.
  EXPECT_EQ(g.NeighborsBefore(0, 1.0).count, 0);
  EXPECT_EQ(g.NeighborsBefore(0, 100.0).count, 3);
}

TEST(TemporalGraphTest, NeighborsAreChronological) {
  auto g = TemporalGraph::Create(4, MakeEvents()).ValueOrDie();
  auto view = g.NeighborsBefore(1, 100.0);
  for (int64_t i = 1; i < view.count; ++i) {
    EXPECT_LE(view[i - 1].time, view[i].time);
  }
}

TEST(TemporalGraphTest, UndirectedAdjacency) {
  auto g = TemporalGraph::Create(4, {{0, 1, 1.0}}).ValueOrDie();
  EXPECT_EQ(g.NeighborsBefore(0, 2.0).count, 1);
  EXPECT_EQ(g.NeighborsBefore(1, 2.0).count, 1);
  EXPECT_EQ(g.NeighborsBefore(1, 2.0)[0].node, 0);
}

TEST(TemporalGraphTest, DegreeAndHasInteractions) {
  auto g = TemporalGraph::Create(4, MakeEvents()).ValueOrDie();
  EXPECT_EQ(g.Degree(0), 3);
  EXPECT_EQ(g.Degree(3), 1);
  EXPECT_TRUE(g.HasInteractions(2));
  auto g2 = TemporalGraph::Create(5, MakeEvents()).ValueOrDie();
  EXPECT_FALSE(g2.HasInteractions(4));
}

TEST(TemporalGraphTest, NodesBefore) {
  auto g = TemporalGraph::Create(4, MakeEvents()).ValueOrDie();
  auto nodes = g.NodesBefore(1.5);
  EXPECT_EQ(nodes.size(), 2u);  // only 0 and 2 interacted before t=1.5
}

TEST(TemporalGraphTest, EventsInWindow) {
  auto g = TemporalGraph::Create(4, MakeEvents()).ValueOrDie();
  auto window = g.EventsInWindow(2.0, 4.5);
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window.front().time, 2.0);
  EXPECT_EQ(window.back().time, 4.0);
}

TEST(TemporalGraphTest, EventIndexInNeighborView) {
  auto g = TemporalGraph::Create(4, MakeEvents()).ValueOrDie();
  auto view = g.NeighborsBefore(0, 10.0);
  for (const auto& n : view) {
    const Event& e = g.event(n.event_index);
    EXPECT_TRUE(e.src == 0 || e.dst == 0);
    EXPECT_EQ(e.time, n.time);
  }
}

TEST(StaticSnapshotTest, CollapsesMultiEdges) {
  auto g = TemporalGraph::Create(
               3, {{0, 1, 1.0}, {0, 1, 2.0}, {1, 2, 3.0}})
               .ValueOrDie();
  auto snap = StaticSnapshot::FromTemporalGraph(
      g, std::numeric_limits<double>::infinity());
  EXPECT_EQ(snap.Degree(0), 1);
  EXPECT_EQ(snap.Degree(1), 2);
  EXPECT_EQ(snap.num_edges(), 2);
}

TEST(StaticSnapshotTest, RespectsTimeCutoff) {
  auto g = TemporalGraph::Create(
               3, {{0, 1, 1.0}, {1, 2, 5.0}})
               .ValueOrDie();
  auto snap = StaticSnapshot::FromTemporalGraph(g, 3.0);
  EXPECT_EQ(snap.Degree(2), 0);
  EXPECT_EQ(snap.Degree(0), 1);
}

TEST(BatcherTest, CoversAllEventsInOrder) {
  auto g = TemporalGraph::Create(4, MakeEvents()).ValueOrDie();
  ChronologicalBatcher batcher(&g, 2);
  EXPECT_EQ(batcher.num_batches(), 3);
  EventBatch batch;
  int64_t total = 0;
  double last_time = -1.0;
  while (batcher.Next(&batch)) {
    for (const Event& e : batch.events) {
      EXPECT_GE(e.time, last_time);
      last_time = e.time;
      ++total;
    }
  }
  EXPECT_EQ(total, 5);
  EXPECT_FALSE(batcher.Next(&batch));
  batcher.Reset();
  EXPECT_TRUE(batcher.Next(&batch));
  EXPECT_EQ(batch.first_event_index, 0);
}

}  // namespace
}  // namespace cpdg::graph
