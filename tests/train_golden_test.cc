// Golden-loss regression tests for the nine training loops that were
// migrated onto the shared training runtime (src/train/). Each scenario
// fixes every seed and asserts the per-epoch losses against values
// captured from the pre-refactor hand-rolled loops: the migration must be
// behavior-preserving down to floating-point op order.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "core/finetuner.h"
#include "core/pretrainer.h"
#include "dgnn/trainer.h"
#include "eval/evaluators.h"
#include "graph/temporal_graph.h"
#include "ssl/ssl_baselines.h"
#include "static_gnn/static_gnn.h"

namespace cpdg {
namespace {

using graph::Event;
using graph::NodeId;
using graph::TemporalGraph;

constexpr double kTol = 1e-5;

// Prints captured values when CPDG_GOLDEN_PRINT is set, for re-baselining.
bool GoldenPrint() { return std::getenv("CPDG_GOLDEN_PRINT") != nullptr; }

void CheckGolden(const char* name, const std::vector<double>& actual,
                 const std::vector<double>& expected) {
  if (GoldenPrint()) {
    std::fprintf(stderr, "GOLDEN %s =", name);
    for (double v : actual) std::fprintf(stderr, " %.17g,", v);
    std::fprintf(stderr, "\n");
    return;
  }
  ASSERT_EQ(actual.size(), expected.size()) << name;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], kTol) << name << " index " << i;
  }
}

// 30-node bipartite graph (15 users, 15 items), as in core_test.
TemporalGraph MakeGraphA(uint64_t seed, int64_t events_count = 400) {
  Rng rng(seed);
  std::vector<Event> events;
  for (int64_t i = 0; i < events_count; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(15));
    NodeId b = 15 + static_cast<NodeId>(rng.NextBounded(15));
    events.push_back({a, b, static_cast<double>(i) * 0.002});
  }
  return TemporalGraph::Create(30, events).ValueOrDie();
}

// 24-node two-community bipartite graph, as in baselines_test.
TemporalGraph MakeGraphB(uint64_t seed, int64_t events_count = 400) {
  Rng rng(seed);
  std::vector<Event> events;
  for (int64_t i = 0; i < events_count; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(12));
    NodeId b = (a < 6) ? 12 + static_cast<NodeId>(rng.NextBounded(6))
                       : 18 + static_cast<NodeId>(rng.NextBounded(6));
    events.push_back({a, b, static_cast<double>(i) * 0.002});
  }
  return TemporalGraph::Create(24, events).ValueOrDie();
}

dgnn::EncoderConfig SmallConfig(int64_t num_nodes) {
  dgnn::EncoderConfig c =
      dgnn::EncoderConfig::Preset(dgnn::EncoderType::kTgn, num_nodes);
  c.memory_dim = 8;
  c.embed_dim = 8;
  c.time_dim = 4;
  c.num_neighbors = 3;
  return c;
}

static_gnn::StaticGnnEncoder::Config SmallStaticConfig(int64_t num_nodes) {
  static_gnn::StaticGnnEncoder::Config c;
  c.num_nodes = num_nodes;
  c.feature_dim = 8;
  c.hidden_dim = 8;
  c.embed_dim = 8;
  c.num_neighbors = 3;
  return c;
}

TEST(TrainGoldenTest, CpdgPretrain) {
  TemporalGraph g = MakeGraphA(11);
  Rng rng(13);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  dgnn::LinkPredictor decoder(8, 8, &rng);
  core::CpdgConfig config;
  config.epochs = 2;
  config.batch_size = 50;
  config.num_checkpoints = 4;
  config.max_contrast_anchors = 16;
  core::CpdgPretrainer pretrainer(config, &rng);
  core::PretrainResult result = pretrainer.Pretrain(&encoder, &decoder, g);
  // Re-captured when batch preparation (negative sampling, anchor
  // subsampling, subgraph draws) moved onto per-(epoch, batch) RNG
  // streams for the prefetch pipeline: the same loops now draw from
  // substreams instead of the shared sequential stream, which permutes
  // the sampled negatives/subgraphs. The values are identical at every
  // prefetch depth/worker count — see train_pipeline_test.
  CheckGolden("cpdg_pretrain", result.log.epoch_losses,
              {0.97928743064403534, 0.94933062046766281});

  // Telemetry contract: wall-clock, batch counts, mean loss and clipped
  // gradient norms are populated for every epoch.
  ASSERT_EQ(result.log.epochs.size(), 2u);
  for (const train::EpochTelemetry& et : result.log.epochs) {
    EXPECT_EQ(et.num_batches, 8);  // 400 events / batch_size 50
    EXPECT_EQ(et.num_steps, 8);
    EXPECT_GE(et.wall_clock_sec, 0.0);
    EXPECT_GT(et.mean_grad_norm_pre_clip, 0.0);
    EXPECT_GT(et.mean_grad_norm_post_clip, 0.0);
    EXPECT_LE(et.mean_grad_norm_post_clip, et.mean_grad_norm_pre_clip + kTol);
  }
  EXPECT_NEAR(result.log.final_epoch().mean_loss,
              result.log.epoch_losses.back(), kTol);
  EXPECT_GE(result.log.total_wall_clock_sec(), 0.0);
}

TEST(TrainGoldenTest, FineTune) {
  TemporalGraph g = MakeGraphA(31);
  Rng rng(37);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  core::FineTuneConfig config;
  config.train.epochs = 2;
  config.train.batch_size = 50;
  train::TrainTelemetry telemetry;
  core::FineTunedModel model = core::FineTuneLinkPrediction(
      &encoder, g, config, nullptr, &rng, &telemetry);
  (void)model;
  // Re-captured for per-(epoch, batch) RNG streams; see CpdgPretrain.
  CheckGolden("finetune", telemetry.epoch_losses,
              {0.69485455006361008, 0.69135183095932007});

  ASSERT_EQ(telemetry.epochs.size(), 2u);
  for (const train::EpochTelemetry& et : telemetry.epochs) {
    EXPECT_EQ(et.num_batches, 8);
    EXPECT_GE(et.wall_clock_sec, 0.0);
    EXPECT_GT(et.mean_grad_norm_post_clip, 0.0);
  }
}

TEST(TrainGoldenTest, TlpTrainer) {
  TemporalGraph g = MakeGraphA(21);
  Rng rng(23);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  dgnn::LinkPredictor decoder(8, 8, &rng);
  dgnn::TlpTrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 50;
  dgnn::TrainLog log =
      dgnn::TrainLinkPrediction(&encoder, &decoder, g, opts, &rng);
  // Re-captured for per-(epoch, batch) RNG streams; see CpdgPretrain.
  CheckGolden("tlp", log.epoch_losses,
              {0.68981204181909561, 0.68318554013967514,
               0.68032292276620865});
}

TEST(TrainGoldenTest, Ddgcl) {
  TemporalGraph g = MakeGraphB(9, 600);
  Rng rng(10);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  ssl::SslTrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 60;
  opts.view_window = 0.2;
  // Assigning to the base TrainLog checks the telemetry type still slices
  // cleanly onto the legacy log type used across the repo.
  dgnn::TrainLog log = ssl::PretrainDdgcl(&encoder, g, opts, &rng);
  CheckGolden("ddgcl", log.epoch_losses,
              {0.62676404118537898, 0.5886502087116241});
}

TEST(TrainGoldenTest, SelfRgnn) {
  TemporalGraph g = MakeGraphB(11, 600);
  Rng rng(12);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  ssl::SslTrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 60;
  dgnn::TrainLog log = ssl::PretrainSelfRgnn(&encoder, g, opts, &rng);
  CheckGolden("selfrgnn", log.epoch_losses,
              {0.49786578714847562, 0.49223771691322327});
}

TEST(TrainGoldenTest, StaticLinkPrediction) {
  TemporalGraph g = MakeGraphB(3);
  auto snap = graph::StaticSnapshot::FromTemporalGraph(
      g, std::numeric_limits<double>::infinity());
  Rng rng(4);
  static_gnn::StaticGnnEncoder encoder(SmallStaticConfig(g.num_nodes()),
                                       &rng);
  encoder.AttachSnapshot(&snap);
  tensor::Mlp decoder({16, 8, 1}, &rng);
  static_gnn::StaticTrainOptions opts;
  opts.steps = 60;
  opts.batch_size = 32;
  double final_loss = static_gnn::TrainLinkPredictionStatic(
      &encoder, &decoder, g.events(), opts, &rng);
  CheckGolden("static_lp", {final_loss}, {0.68578656911849978});
}

TEST(TrainGoldenTest, Dgi) {
  TemporalGraph g = MakeGraphB(5);
  auto snap = graph::StaticSnapshot::FromTemporalGraph(
      g, std::numeric_limits<double>::infinity());
  Rng rng(6);
  static_gnn::StaticGnnEncoder encoder(SmallStaticConfig(g.num_nodes()),
                                       &rng);
  encoder.AttachSnapshot(&snap);
  auto nodes = g.NodesBefore(std::numeric_limits<double>::infinity());
  static_gnn::StaticTrainOptions opts;
  opts.steps = 40;
  double final_loss = static_gnn::TrainDgi(&encoder, nodes, opts, &rng);
  CheckGolden("dgi", {final_loss}, {0.69508542418479924});
}

TEST(TrainGoldenTest, GptGnn) {
  TemporalGraph g = MakeGraphB(7);
  auto snap = graph::StaticSnapshot::FromTemporalGraph(
      g, std::numeric_limits<double>::infinity());
  Rng rng(8);
  static_gnn::StaticGnnEncoder encoder(SmallStaticConfig(g.num_nodes()),
                                       &rng);
  encoder.AttachSnapshot(&snap);
  static_gnn::StaticTrainOptions opts;
  opts.steps = 40;
  double final_loss =
      static_gnn::TrainGptGnn(&encoder, g.events(), opts, &rng);
  CheckGolden("gptgnn", {final_loss}, {0.69779365062713627});
}

TEST(TrainGoldenTest, NodeClassificationHead) {
  // Labeled graph: ~every 4th event carries a label; positives are the
  // minority class so the oversampling path is exercised.
  Rng grng(51);
  std::vector<Event> events;
  for (int64_t i = 0; i < 500; ++i) {
    NodeId a = static_cast<NodeId>(grng.NextBounded(15));
    NodeId b = 15 + static_cast<NodeId>(grng.NextBounded(15));
    Event e{a, b, static_cast<double>(i) * 0.002};
    if (i % 4 == 0) e.label = (a < 3) ? 1 : 0;
    events.push_back(e);
  }
  TemporalGraph g = TemporalGraph::Create(30, events).ValueOrDie();
  Rng rng(53);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  eval::EmbedFn embed = [&](const std::vector<NodeId>& nodes,
                            const std::vector<double>& times) {
    return encoder.ComputeEmbeddings(nodes, times);
  };
  eval::NodeClassificationMetrics metrics =
      eval::EvaluateDynamicNodeClassification(&encoder, embed, g.events(),
                                              0.6, 0.6, 50, 25, 0.05f, &rng);
  CheckGolden("node_cls_auc", {metrics.auc}, {0.92013888888888884});

  // The head's full-batch training trace (one step per epoch), captured
  // from the pre-refactor loop via a temporary probe.
  ASSERT_EQ(metrics.head_log.epochs.size(), 25u);
  CheckGolden("head_first_last",
              {metrics.head_log.epoch_losses.front(),
               metrics.head_log.epoch_losses.back()},
              {0.74420899152755737, 0.28536489605903625});
}

TEST(SampleNegativeTest, DegeneratePoolFallsBackToPositive) {
  // A pool containing only the positive destination can never produce a
  // distinct negative: after the bounded retries the sampler must give up
  // and return the positive rather than loop forever.
  Rng rng(99);
  std::vector<NodeId> pool = {7};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dgnn::SampleNegative(pool, 30, 7, &rng), 7);
  }
}

TEST(SampleNegativeTest, AvoidsPositiveWhenPoolAllowsIt) {
  // Draws come from the pool only; the retry loop avoids the positive in
  // all but the rare case where every bounded attempt hits it.
  Rng rng(100);
  std::vector<NodeId> pool = {3, 7};
  int non_positive = 0;
  for (int i = 0; i < 50; ++i) {
    NodeId neg = dgnn::SampleNegative(pool, 30, 7, &rng);
    EXPECT_TRUE(neg == 3 || neg == 7);
    if (neg == 3) ++non_positive;
  }
  EXPECT_GE(non_positive, 45);
  // Empty pool: uniform over [0, num_nodes), still avoiding the positive.
  std::vector<NodeId> empty_pool;
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(dgnn::SampleNegative(empty_pool, 30, 7, &rng), 7);
  }
}

}  // namespace
}  // namespace cpdg
