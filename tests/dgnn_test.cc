#include "dgnn/encoder.h"

#include <gtest/gtest.h>

#include "dgnn/trainer.h"
#include "graph/temporal_graph.h"

namespace cpdg::dgnn {
namespace {

using graph::Event;
using graph::TemporalGraph;

TemporalGraph MakeSmallGraph() {
  std::vector<Event> events;
  Rng rng(42);
  // 20 nodes, 200 events, mildly structured.
  for (int i = 0; i < 200; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(10));
    NodeId b = 10 + static_cast<NodeId>(rng.NextBounded(10));
    events.push_back({a, b, static_cast<double>(i) * 0.01});
  }
  return TemporalGraph::Create(20, events).ValueOrDie();
}

TEST(MemoryTest, StartsAtZeroAndResets) {
  Memory mem(5, 4);
  EXPECT_EQ(mem.StateNorm(), 0.0);
  mem.SetStates({2}, tensor::Tensor::Full(1, 4, 1.0f));
  EXPECT_GT(mem.StateNorm(), 0.0);
  mem.SetLastUpdate(2, 7.0);
  mem.EnqueueMessage(2, {3, 7.0});
  mem.Reset();
  EXPECT_EQ(mem.StateNorm(), 0.0);
  EXPECT_EQ(mem.LastUpdate(2), 0.0);
  EXPECT_FALSE(mem.HasPending(2));
}

TEST(MemoryTest, GetSetRoundTrip) {
  Memory mem(5, 3);
  tensor::Tensor s = tensor::Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  mem.SetStates({1, 3}, s);
  tensor::Tensor back = mem.GetStates({3, 1});
  EXPECT_FLOAT_EQ(back.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(back.at(1, 2), 3.0f);
  EXPECT_FALSE(back.requires_grad());
}

TEST(MemoryTest, PendingMessageLifecycle) {
  Memory mem(3, 2);
  EXPECT_FALSE(mem.HasPending(0));
  mem.EnqueueMessage(0, {1, 2.0});
  mem.EnqueueMessage(0, {2, 3.0});
  ASSERT_TRUE(mem.HasPending(0));
  EXPECT_EQ(mem.Pending(0).size(), 2u);
  EXPECT_EQ(mem.Pending(0).back().other, 2);
  mem.ClearPending(0);
  EXPECT_FALSE(mem.HasPending(0));
}

TEST(MemoryTest, SnapshotRestoreRoundTrip) {
  Memory mem(4, 2);
  mem.SetStates({0}, tensor::Tensor::Full(1, 2, 3.0f));
  auto snap = mem.SnapshotFlat();
  mem.Reset();
  EXPECT_EQ(mem.StateNorm(), 0.0);
  mem.RestoreFlat(snap);
  EXPECT_FLOAT_EQ(mem.StateData(0)[0], 3.0f);
}

TEST(EncoderConfigTest, PresetsMatchTableIII) {
  auto jodie = EncoderConfig::Preset(EncoderType::kJodie, 10);
  EXPECT_EQ(jodie.message, MessageFunctionType::kIdentity);
  EXPECT_EQ(jodie.updater, MemoryUpdaterType::kRnn);
  EXPECT_EQ(jodie.embedding, EmbeddingType::kTimeProjection);

  auto dyrep = EncoderConfig::Preset(EncoderType::kDyRep, 10);
  EXPECT_EQ(dyrep.message, MessageFunctionType::kAttention);
  EXPECT_EQ(dyrep.updater, MemoryUpdaterType::kRnn);
  EXPECT_EQ(dyrep.embedding, EmbeddingType::kIdentity);

  auto tgn = EncoderConfig::Preset(EncoderType::kTgn, 10);
  EXPECT_EQ(tgn.message, MessageFunctionType::kIdentity);
  EXPECT_EQ(tgn.aggregator, AggregatorType::kLast);
  EXPECT_EQ(tgn.updater, MemoryUpdaterType::kGru);
  EXPECT_EQ(tgn.embedding, EmbeddingType::kAttention);
}

class EncoderSmokeTest
    : public ::testing::TestWithParam<EncoderType> {};

TEST_P(EncoderSmokeTest, EmbeddingShapesAndCommit) {
  TemporalGraph g = MakeSmallGraph();
  Rng rng(7);
  EncoderConfig config = EncoderConfig::Preset(GetParam(), g.num_nodes());
  config.memory_dim = 8;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.num_neighbors = 3;
  DgnnEncoder encoder(config, &g, &rng);

  encoder.BeginBatch();
  tensor::Tensor z = encoder.ComputeEmbeddings({0, 1, 15}, {1.0, 1.0, 1.0});
  EXPECT_EQ(z.rows(), 3);
  EXPECT_EQ(z.cols(), 8);

  // Commit some events and check memory moves off zero.
  std::vector<Event> batch = {{0, 15, 1.1}, {1, 16, 1.2}};
  encoder.CommitBatch(batch);
  encoder.BeginBatch();
  tensor::Tensor z2 = encoder.ComputeEmbeddings({0, 1}, {1.3, 1.3});
  encoder.CommitBatch({});
  EXPECT_GT(encoder.memory().StateNorm(), 0.0);
}

TEST_P(EncoderSmokeTest, ReplayAdvancesMemoryDeterministically) {
  TemporalGraph g = MakeSmallGraph();
  Rng rng1(7), rng2(7);
  EncoderConfig config = EncoderConfig::Preset(GetParam(), g.num_nodes());
  config.memory_dim = 8;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.num_neighbors = 3;
  DgnnEncoder e1(config, &g, &rng1);
  DgnnEncoder e2(config, &g, &rng2);
  e2.CopyParametersFrom(e1);

  e1.ReplayEvents(g.events(), 50);
  e2.ReplayEvents(g.events(), 50);
  EXPECT_GT(e1.memory().StateNorm(), 0.0);
  EXPECT_NEAR(e1.memory().StateNorm(), e2.memory().StateNorm(), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, EncoderSmokeTest,
                         ::testing::Values(EncoderType::kJodie,
                                           EncoderType::kDyRep,
                                           EncoderType::kTgn),
                         [](const auto& info) {
                           return EncoderTypeName(info.param);
                         });

TEST(EncoderTest, PendingMessagesAreConsumedOnCommit) {
  TemporalGraph g = MakeSmallGraph();
  Rng rng(9);
  EncoderConfig config = EncoderConfig::Preset(EncoderType::kTgn,
                                               g.num_nodes());
  config.memory_dim = 8;
  config.embed_dim = 8;
  DgnnEncoder encoder(config, &g, &rng);

  encoder.BeginBatch();
  encoder.CommitBatch({{0, 15, 1.0}});
  EXPECT_TRUE(encoder.memory().HasPending(0));
  EXPECT_TRUE(encoder.memory().HasPending(15));
  EXPECT_EQ(encoder.memory().LastUpdate(0), 1.0);

  // Touching node 0 flushes + commit persists and clears.
  encoder.BeginBatch();
  tensor::Tensor s = encoder.ComputeUpdatedStates({0});
  encoder.CommitBatch({});
  EXPECT_FALSE(encoder.memory().HasPending(0));
  EXPECT_TRUE(encoder.memory().HasPending(15));  // untouched
  EXPECT_GT(encoder.memory().StateNorm(), 0.0);
}

TEST(EncoderTest, AttachGraphResetsMemory) {
  TemporalGraph g = MakeSmallGraph();
  Rng rng(11);
  EncoderConfig config = EncoderConfig::Preset(EncoderType::kTgn,
                                               g.num_nodes());
  config.memory_dim = 8;
  config.embed_dim = 8;
  DgnnEncoder encoder(config, &g, &rng);
  encoder.ReplayEvents(g.events(), 50);
  EXPECT_GT(encoder.memory().StateNorm(), 0.0);
  encoder.AttachGraph(&g);
  EXPECT_EQ(encoder.memory().StateNorm(), 0.0);
}

TEST(TrainerTest, SampleNegativeAvoidsPositive) {
  Rng rng(13);
  std::vector<NodeId> pool = {5, 6, 7};
  for (int i = 0; i < 50; ++i) {
    NodeId neg = SampleNegative(pool, 100, 6, &rng);
    EXPECT_TRUE(neg == 5 || neg == 7);
  }
  // Empty pool: uniform over all nodes.
  for (int i = 0; i < 50; ++i) {
    NodeId neg = SampleNegative({}, 10, 3, &rng);
    EXPECT_GE(neg, 0);
    EXPECT_LT(neg, 10);
    EXPECT_NE(neg, 3);
  }
}

TEST(TrainerTest, LinkPredictionLossDecreases) {
  TemporalGraph g = MakeSmallGraph();
  Rng rng(15);
  EncoderConfig config = EncoderConfig::Preset(EncoderType::kTgn,
                                               g.num_nodes());
  config.memory_dim = 8;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.num_neighbors = 3;
  DgnnEncoder encoder(config, &g, &rng);
  LinkPredictor decoder(8, 8, &rng);

  TlpTrainOptions opts;
  opts.epochs = 4;
  opts.batch_size = 50;
  TrainLog log = TrainLinkPrediction(&encoder, &decoder, g, opts, &rng);
  ASSERT_EQ(log.epoch_losses.size(), 4u);
  EXPECT_LT(log.epoch_losses.back(), log.epoch_losses.front());
  EXPECT_LT(log.final_loss(), 0.7);  // below chance-level BCE
}

}  // namespace
}  // namespace cpdg::dgnn
