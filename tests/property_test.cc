// Property-based tests: parameterized sweeps over the invariants that the
// samplers, metrics, memory protocol, and autograd engine must uphold for
// any configuration.

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "dgnn/encoder.h"
#include "eval/metrics.h"
#include "graph/temporal_graph.h"
#include "sampler/samplers.h"
#include "gradcheck.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace cpdg {
namespace {

using graph::Event;
using graph::NodeId;
using graph::TemporalGraph;

TemporalGraph RandomGraph(uint64_t seed, int64_t nodes, int64_t events) {
  Rng rng(seed);
  std::vector<Event> ev;
  for (int64_t i = 0; i < events; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(nodes));
    NodeId b = static_cast<NodeId>(rng.NextBounded(nodes));
    if (a == b) b = (b + 1) % nodes;
    ev.push_back({a, b, rng.NextDouble()});
  }
  return TemporalGraph::Create(nodes, ev).ValueOrDie();
}

// ---------- Sampler invariants over (width, depth, bias) ----------

using SamplerParams = std::tuple<int, int, sampler::TemporalBias>;

class SamplerPropertyTest
    : public ::testing::TestWithParam<SamplerParams> {};

TEST_P(SamplerPropertyTest, EtaBfsInvariants) {
  auto [width, depth, bias] = GetParam();
  TemporalGraph g = RandomGraph(100 + width * 10 + depth, 40, 500);
  sampler::StructuralTemporalSampler s(&g);
  sampler::StructuralTemporalSampler::Options opts;
  opts.width = width;
  opts.depth = depth;
  Rng rng(7);

  // Geometric bound on subgraph size: sum_{h=1..depth} width^h.
  int64_t bound = 0, w = 1;
  for (int h = 0; h < depth; ++h) {
    w *= width;
    bound += w;
  }

  for (NodeId root = 0; root < 20; ++root) {
    double t = 0.5 + 0.02 * static_cast<double>(root);
    auto sample = s.SampleEtaBfs(root, t, bias, opts, &rng);
    EXPECT_LE(sample.size(), bound);
    // Nodes are unique and exclude the root.
    std::set<NodeId> uniq(sample.nodes.begin(), sample.nodes.end());
    EXPECT_EQ(static_cast<int64_t>(uniq.size()), sample.size());
    EXPECT_EQ(uniq.count(root), 0u);
    // Every sampled node was reached through a pre-t interaction.
    for (size_t i = 0; i < sample.nodes.size(); ++i) {
      EXPECT_LT(sample.times[i], t);
    }
  }
}

TEST_P(SamplerPropertyTest, EpsilonDfsInvariants) {
  auto [width, depth, bias] = GetParam();
  (void)bias;  // DFS is deterministic and bias-free
  TemporalGraph g = RandomGraph(200 + width + depth, 40, 500);
  sampler::StructuralTemporalSampler s(&g);
  sampler::StructuralTemporalSampler::Options opts;
  opts.width = width;
  opts.depth = depth;

  int64_t bound = 0, w = 1;
  for (int h = 0; h < depth; ++h) {
    w *= width;
    bound += w;
  }
  for (NodeId root = 0; root < 20; ++root) {
    double t = 0.6;
    auto a = s.SampleEpsilonDfs(root, t, opts);
    auto b = s.SampleEpsilonDfs(root, t, opts);
    EXPECT_EQ(a.nodes, b.nodes);  // deterministic
    EXPECT_LE(a.size(), bound);
    std::set<NodeId> uniq(a.nodes.begin(), a.nodes.end());
    EXPECT_EQ(static_cast<int64_t>(uniq.size()), a.size());
    for (double ts : a.times) EXPECT_LT(ts, t);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthDepthBias, SamplerPropertyTest,
    ::testing::Combine(
        ::testing::Values(1, 2, 4),
        ::testing::Values(1, 2, 3),
        ::testing::Values(sampler::TemporalBias::kChronological,
                          sampler::TemporalBias::kReverseChronological,
                          sampler::TemporalBias::kUniform)));

// ---------- Probability function invariants ----------

class TemporalProbPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(TemporalProbPropertyTest, SimplexAndMonotonicity) {
  double tau = GetParam();
  Rng rng(11);
  std::vector<double> times;
  for (int i = 0; i < 30; ++i) times.push_back(rng.NextDouble() * 0.9);
  std::sort(times.begin(), times.end());

  for (auto bias : {sampler::TemporalBias::kChronological,
                    sampler::TemporalBias::kReverseChronological}) {
    auto p = sampler::TemporalProbabilities(times, 1.0, bias, tau);
    double sum = 0.0;
    for (double x : p) {
      EXPECT_GT(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Monotone in event time (non-strict: ties allowed).
    for (size_t i = 1; i < p.size(); ++i) {
      if (bias == sampler::TemporalBias::kChronological) {
        EXPECT_GE(p[i], p[i - 1] - 1e-12);
      } else {
        EXPECT_LE(p[i], p[i - 1] + 1e-12);
      }
    }
    // Chronological and reverse are mirror images of each other.
  }
}

INSTANTIATE_TEST_SUITE_P(Temperatures, TemporalProbPropertyTest,
                         ::testing::Values(0.05, 0.2, 1.0, 5.0));

// ---------- Metric invariances ----------

class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, AucInvariantUnderMonotoneTransform) {
  Rng rng(GetParam());
  std::vector<eval::ScoredLabel> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back({rng.NextDouble(),
                       rng.NextBernoulli(0.4) ? 1 : 0});
  }
  double base = eval::RocAuc(samples);
  std::vector<eval::ScoredLabel> transformed = samples;
  for (auto& s : transformed) s.score = std::exp(3.0 * s.score) + 5.0;
  EXPECT_NEAR(eval::RocAuc(transformed), base, 1e-12);
}

TEST_P(MetricPropertyTest, AucComplementOnLabelFlip) {
  Rng rng(GetParam() + 1);
  std::vector<eval::ScoredLabel> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back({rng.NextDouble(), rng.NextBernoulli(0.5) ? 1 : 0});
  }
  double base = eval::RocAuc(samples);
  std::vector<eval::ScoredLabel> flipped = samples;
  for (auto& s : flipped) s.label = 1 - s.label;
  EXPECT_NEAR(eval::RocAuc(flipped), 1.0 - base, 1e-12);
}

TEST_P(MetricPropertyTest, ApAtLeastPositiveRate) {
  // AP of any ranking is >= the positive base rate achieved by random
  // ranking in expectation; check the weaker bound AP <= 1 and >= 0, plus
  // perfect ranking gives 1.
  Rng rng(GetParam() + 2);
  std::vector<eval::ScoredLabel> samples;
  for (int i = 0; i < 100; ++i) {
    int label = rng.NextBernoulli(0.3) ? 1 : 0;
    samples.push_back({static_cast<double>(label) + rng.NextDouble() * 0.1,
                       label});
  }
  double ap = eval::AveragePrecision(samples);
  EXPECT_GT(ap, 0.9);  // near-perfect separation by construction
  EXPECT_LE(ap, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------- Autograd: random composite graphs vs numeric gradients ------

class AutogradFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutogradFuzzTest, RandomCompositeProgram) {
  using tensor::Tensor;
  Rng rng(GetParam());
  Tensor a = Tensor::RandomUniform(3, 4, 0.8f, &rng, true);
  Tensor b = Tensor::RandomUniform(4, 3, 0.8f, &rng, true);
  Tensor c = Tensor::RandomUniform(3, 3, 0.8f, &rng, true);

  auto loss_fn = [seed = GetParam()](std::vector<Tensor>& in) {
    using namespace tensor;
    Tensor m = MatMul(in[0], in[1]);       // [3,3]
    Tensor h = Tanh(Add(m, in[2]));        // [3,3]
    switch (seed % 4) {
      case 0:
        h = Sigmoid(MatMul(h, Transpose(h)));
        break;
      case 1:
        h = Softmax(Concat(h, in[2]));
        break;
      case 2:
        h = Mul(h, h);
        break;
      default:
        h = Relu(Sub(h, in[2]));
        break;
    }
    return Mean(Square(h));
  };

  // Analytic vs numeric over every input element.
  cpdg::testing::ExpectGradientsMatch({a, b, c}, loss_fn);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzzTest,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u,
                                           17u, 18u));

// ---------- Memory / encoder protocol invariants ----------

class EncoderProtocolTest
    : public ::testing::TestWithParam<dgnn::EncoderType> {};

TEST_P(EncoderProtocolTest, RandomEventStreamKeepsInvariants) {
  TemporalGraph g = RandomGraph(500, 30, 400);
  Rng rng(31);
  dgnn::EncoderConfig config =
      dgnn::EncoderConfig::Preset(GetParam(), g.num_nodes());
  config.memory_dim = 8;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.num_neighbors = 3;
  dgnn::DgnnEncoder encoder(config, &g, &rng);

  const auto& events = g.events();
  double last_norm = 0.0;
  for (size_t start = 0; start < events.size(); start += 80) {
    size_t end = std::min(events.size(), start + 80);
    std::vector<Event> batch(events.begin() + start, events.begin() + end);
    std::vector<NodeId> roots;
    std::vector<double> times;
    for (const Event& e : batch) {
      roots.push_back(e.src);
      times.push_back(e.time);
    }
    encoder.BeginBatch();
    tensor::Tensor z = encoder.ComputeEmbeddings(roots, times);
    // Embeddings are finite.
    for (int64_t i = 0; i < z.size(); ++i) {
      EXPECT_TRUE(std::isfinite(z.data()[i]));
    }
    encoder.CommitBatch(batch);
    // last_update is monotone along the stream for touched nodes.
    for (const Event& e : batch) {
      EXPECT_GE(encoder.memory().LastUpdate(e.src), e.time - 1e-12);
    }
    double norm = encoder.memory().StateNorm();
    EXPECT_TRUE(std::isfinite(norm));
    last_norm = norm;
  }
  EXPECT_GT(last_norm, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, EncoderProtocolTest,
                         ::testing::Values(dgnn::EncoderType::kJodie,
                                           dgnn::EncoderType::kDyRep,
                                           dgnn::EncoderType::kTgn),
                         [](const auto& info) {
                           return dgnn::EncoderTypeName(info.param);
                         });

}  // namespace
}  // namespace cpdg
