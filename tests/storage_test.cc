// Backend-parity and durability tests for the sharded, memory-mapped
// graph store.
//
// The GraphStore determinism contract says two stores over the same
// logical event set answer every query identically, regardless of backend,
// shard count, or whether events arrived by bulk build or streaming
// append. These tests pin that contract bit-for-bit against the in-memory
// TemporalGraph — first on the raw query surface (EventsInWindow /
// NeighborsBefore boundary semantics), then through the samplers, a full
// pre-training epoch, and the serving engine. Corruption sweeps
// (FaultInjector bitflips, direct truncation) verify that torn or silently
// corrupted store files are rejected cleanly at Open.

#include "storage/sharded_store.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/pretrainer.h"
#include "dgnn/encoder.h"
#include "graph/graph_store.h"
#include "graph/temporal_graph.h"
#include "gtest/gtest.h"
#include "sampler/samplers.h"
#include "serve/serving_engine.h"
#include "storage/event_log.h"
#include "tensor/checkpoint_container.h"
#include "tensor/ops.h"
#include "tensor/serialization.h"
#include "tensor/tensor.h"
#include "train/checkpoint.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace cpdg {
namespace {

namespace fs = std::filesystem;
namespace ts = tensor;
using graph::Event;
using graph::GraphStore;
using graph::NodeId;
using graph::TemporalGraph;
using storage::ShardedGraphStore;
using storage::StoreOptions;

constexpr int64_t kNumNodes = 24;

/// Fresh per-test store directory under the gtest temp root.
std::string StoreDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/storage_" + name;
  fs::remove_all(dir);
  return dir;
}

StoreOptions Opts(uint32_t shards, bool verify = true) {
  StoreOptions opts;
  opts.shard_count = shards;
  opts.verify_checksums = verify;
  return opts;
}

/// Random events with deliberate timestamp ties (groups of three share one
/// time) so the stable-sort / strictly-before boundary semantics are
/// actually exercised, not just the generic sorted path.
std::vector<Event> MakeEvents(uint64_t seed, int64_t count) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    Event e;
    e.src = static_cast<NodeId>(rng.NextBounded(kNumNodes));
    e.dst = static_cast<NodeId>(rng.NextBounded(kNumNodes));
    if (e.dst == e.src) e.dst = (e.src + 1) % kNumNodes;
    e.time = 0.5 * static_cast<double>(i / 3);  // ties in groups of 3
    e.edge_type = static_cast<int32_t>(rng.NextBounded(4));
    e.label = static_cast<int32_t>(rng.NextBounded(3)) - 1;
    events.push_back(e);
  }
  return events;
}

void ExpectSpanIdentical(graph::NeighborSpan ref, graph::NeighborSpan got,
                         const std::string& context) {
  ASSERT_EQ(ref.count, got.count) << context;
  if (ref.count > 0) {
    EXPECT_EQ(std::memcmp(ref.data, got.data,
                          sizeof(graph::TemporalNeighbor) *
                              static_cast<size_t>(ref.count)),
              0)
        << context;
  }
}

void ExpectEventsIdentical(const std::vector<Event>& ref,
                           const std::vector<Event>& got,
                           const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  if (!ref.empty()) {
    EXPECT_EQ(std::memcmp(ref.data(), got.data(),
                          sizeof(Event) * ref.size()),
              0)
        << context;
  }
}

/// Full query-surface sweep: every GraphStore method compared bit-for-bit
/// at every boundary-relevant time (before the first event, exactly on
/// each distinct event time, between ties, past the last event).
void ExpectBackendParity(const GraphStore& ref, const GraphStore& got) {
  ASSERT_EQ(ref.num_nodes(), got.num_nodes());
  ASSERT_EQ(ref.num_events(), got.num_events());
  EXPECT_EQ(ref.min_time(), got.min_time());
  EXPECT_EQ(ref.max_time(), got.max_time());

  const int64_t n = ref.num_events();
  for (int64_t i = 0; i < n; ++i) {
    Event a = ref.EventAt(i);
    Event b = got.EventAt(i);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(Event)), 0) << "event " << i;
  }

  std::vector<Event> ra, rb;
  ref.ReadEvents(0, n, &ra);
  got.ReadEvents(0, n, &rb);
  ExpectEventsIdentical(ra, rb, "ReadEvents full");
  ref.ReadEvents(n / 3, 2 * n / 3, &ra);
  got.ReadEvents(n / 3, 2 * n / 3, &rb);
  ExpectEventsIdentical(ra, rb, "ReadEvents middle");

  // Probe times: distinct event times themselves (strictly-before
  // boundaries), their midpoints, and both outsides.
  std::vector<double> probes = {ref.min_time() - 1.0, ref.max_time() + 1.0};
  for (int64_t i = 0; i < n; ++i) {
    double t = ref.EventAt(i).time;
    if (probes.size() < 2 || probes.back() != t) probes.push_back(t);
    probes.push_back(t + 0.25);
  }

  graph::NeighborScratch scratch_ref, scratch_got;
  for (NodeId v = 0; v < ref.num_nodes(); ++v) {
    ASSERT_EQ(ref.Degree(v), got.Degree(v)) << "node " << v;
    for (double t : probes) {
      ExpectSpanIdentical(ref.NeighborsBefore(v, t, &scratch_ref),
                          got.NeighborsBefore(v, t, &scratch_got),
                          "NeighborsBefore node " + std::to_string(v) +
                              " t " + std::to_string(t));
    }
  }

  for (double t : probes) {
    EXPECT_EQ(ref.LowerBoundEvent(t), got.LowerBoundEvent(t)) << "t " << t;
  }
  for (size_t i = 0; i + 1 < probes.size(); i += 2) {
    ExpectEventsIdentical(
        ref.EventsInWindow(probes[i], probes[i + 1]),
        got.EventsInWindow(probes[i], probes[i + 1]),
        "EventsInWindow [" + std::to_string(probes[i]) + ", " +
            std::to_string(probes[i + 1]) + ")");
  }
  EXPECT_EQ(ref.NodesBefore(ref.max_time()), got.NodesBefore(got.max_time()));
}

TEST(EventLogFormatTest, LocalNodeCountPartitionsExactly) {
  for (int64_t n : {0, 1, 7, 24, 100}) {
    for (uint32_t k : {1u, 3u, 4u, 7u}) {
      int64_t total = 0;
      for (uint32_t s = 0; s < k; ++s) {
        total += storage::LocalNodeCount(n, k, s);
      }
      EXPECT_EQ(total, n) << "n=" << n << " k=" << k;
    }
  }
}

TEST(BackendParityTest, BuildMatchesTemporalGraphAcrossShardCounts) {
  std::vector<Event> events = MakeEvents(7, 240);
  TemporalGraph ref = TemporalGraph::Create(kNumNodes, events).ValueOrDie();
  for (uint32_t shards : {1u, 4u}) {
    auto store = ShardedGraphStore::Build(
        StoreDir("parity_s" + std::to_string(shards)), kNumNodes, events,
        Opts(shards));
    ASSERT_TRUE(store.ok()) << store.status().message();
    EXPECT_EQ(store.value()->shard_count(), shards);
    ExpectBackendParity(ref, *store.value());
  }
}

TEST(BackendParityTest, StrictlyBeforeSemanticsAtTiedTimestamps) {
  // Node 0 interacts at t=1 (twice, a tie), t=2 and t=3.
  std::vector<Event> events = {
      {0, 1, 1.0}, {2, 0, 1.0}, {0, 3, 2.0}, {4, 0, 3.0}, {5, 6, 4.0}};
  TemporalGraph ref = TemporalGraph::Create(8, events).ValueOrDie();
  auto store = ShardedGraphStore::Build(StoreDir("boundary"), 8, events,
                                        Opts(4));
  ASSERT_TRUE(store.ok()) << store.status().message();

  graph::NeighborScratch scratch;
  for (const GraphStore* g :
       {static_cast<const GraphStore*>(&ref),
        static_cast<const GraphStore*>(store.value().get())}) {
    // Strictly before: a query exactly at an event time excludes every
    // event at that time, including all members of a tie group.
    EXPECT_EQ(g->NeighborsBefore(0, 1.0, &scratch).count, 0);
    EXPECT_EQ(g->NeighborsBefore(0, 1.0 + 1e-9, &scratch).count, 2);
    EXPECT_EQ(g->NeighborsBefore(0, 2.0, &scratch).count, 2);
    EXPECT_EQ(g->NeighborsBefore(0, 3.0, &scratch).count, 3);
    EXPECT_EQ(g->NeighborsBefore(0, 100.0, &scratch).count, 4);
    // Tie group keeps event order.
    auto span = g->NeighborsBefore(0, 2.0, &scratch);
    EXPECT_EQ(span[0].node, 1);
    EXPECT_EQ(span[1].node, 2);
    EXPECT_EQ(span[0].event_index, 0);
    EXPECT_EQ(span[1].event_index, 1);

    // EventsInWindow is [t_lo, t_hi): empty window, exact-hit lower bound,
    // exclusive upper bound.
    EXPECT_TRUE(g->EventsInWindow(1.0, 1.0).empty());
    EXPECT_EQ(g->EventsInWindow(1.0, 2.0).size(), 2u);
    EXPECT_EQ(g->EventsInWindow(2.0, 4.0).size(), 2u);
    EXPECT_EQ(g->EventsInWindow(0.0, 100.0).size(), 5u);
    EXPECT_EQ(g->LowerBoundEvent(1.0), 0);
    EXPECT_EQ(g->LowerBoundEvent(1.5), 2);
    EXPECT_EQ(g->LowerBoundEvent(100.0), 5);
  }
}

TEST(BackendParityTest, StreamedAppendMatchesBulkBuild) {
  std::vector<Event> events = MakeEvents(11, 240);
  std::vector<Event> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) {
                     return a.time < b.time;
                   });
  std::vector<Event> base(sorted.begin(), sorted.begin() + 120);
  std::vector<Event> delta1(sorted.begin() + 120, sorted.begin() + 180);
  std::vector<Event> delta2(sorted.begin() + 180, sorted.end());

  TemporalGraph ref = TemporalGraph::Create(kNumNodes, events).ValueOrDie();
  const std::string dir = StoreDir("append");
  auto store =
      ShardedGraphStore::Build(dir, kNumNodes, base, Opts(4));
  ASSERT_TRUE(store.ok()) << store.status().message();

  ASSERT_TRUE(store.value()->Append(delta1).ok());
  ASSERT_TRUE(store.value()->Append(delta2).ok());
  EXPECT_EQ(store.value()->delta_event_count(), 120);
  EXPECT_EQ(store.value()->base_event_count(), 120);
  // The delta path answers through the scratch merge; must still be
  // bit-identical to the bulk-built reference.
  ExpectBackendParity(ref, *store.value());

  // Durability: a fresh Open over the same directory sees the appends.
  auto reopened = ShardedGraphStore::Open(dir, Opts(4));
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value()->delta_event_count(), 120);
  ExpectBackendParity(ref, *reopened.value());

  // Compaction folds deltas into generation 1 without changing any answer.
  ASSERT_TRUE(store.value()->Compact().ok());
  EXPECT_EQ(store.value()->delta_event_count(), 0);
  EXPECT_EQ(store.value()->base_event_count(), 240);
  EXPECT_EQ(store.value()->generation(), 1);
  ExpectBackendParity(ref, *store.value());

  // And the compacted store reopens identically.
  auto after = ShardedGraphStore::Open(dir, Opts(4));
  ASSERT_TRUE(after.ok()) << after.status().message();
  EXPECT_EQ(after.value()->generation(), 1);
  ExpectBackendParity(ref, *after.value());
}

TEST(BackendParityTest, AppendValidatesInput) {
  std::vector<Event> events = MakeEvents(13, 60);
  auto store = ShardedGraphStore::Build(StoreDir("append_validate"),
                                        kNumNodes, events, Opts(2));
  ASSERT_TRUE(store.ok()) << store.status().message();
  double t_max = store.value()->max_time();

  // Out-of-order (before the live maximum) is refused.
  EXPECT_FALSE(store.value()->Append({{1, 2, t_max - 1.0}}).ok());
  // Out-of-range node ids are refused.
  EXPECT_FALSE(store.value()->Append({{kNumNodes, 2, t_max + 1.0}}).ok());
  EXPECT_FALSE(store.value()->Append({{-1, 2, t_max + 1.0}}).ok());
  // A failed append leaves the store unchanged.
  EXPECT_EQ(store.value()->num_events(), 60);
  EXPECT_EQ(store.value()->delta_event_count(), 0);
}

// ---------------------------------------------------------------------------
// Corruption sweeps: every torn/corrupted artifact must fail Open cleanly
// with an error, never a crash or a silently wrong graph.

TEST(CorruptionTest, BitflipDuringBuildIsRejected) {
  std::vector<Event> events = MakeEvents(17, 90);
  util::FaultInjector::Config fault;
  fault.bitflip_byte = 80;  // a payload byte past the 64 B header
  util::FaultInjector::Scope scope(fault);
  auto store = ShardedGraphStore::Build(StoreDir("bitflip_build"),
                                        kNumNodes, events, Opts(1));
  EXPECT_FALSE(store.ok());
}

TEST(CorruptionTest, RenameFailureLeavesNoOpenableStore) {
  std::vector<Event> events = MakeEvents(19, 90);
  const std::string dir = StoreDir("rename_fail");
  {
    util::FaultInjector::Config fault;
    fault.fail_rename = true;
    util::FaultInjector::Scope scope(fault);
    auto store =
        ShardedGraphStore::Build(dir, kNumNodes, events, Opts(1));
    EXPECT_FALSE(store.ok());
  }
  // Nothing was published, so there is no manifest to open.
  auto reopened = ShardedGraphStore::Open(dir, Opts(1));
  EXPECT_FALSE(reopened.ok());
}

TEST(CorruptionTest, TruncatedEventsFileRejected) {
  std::vector<Event> events = MakeEvents(23, 90);
  const std::string dir = StoreDir("truncate_events");
  ASSERT_TRUE(
      ShardedGraphStore::Build(dir, kNumNodes, events, Opts(1)).ok());

  const std::string path = storage::EventsPath(dir, 0);
  fs::resize_file(path, fs::file_size(path) - 8);
  auto reopened = ShardedGraphStore::Open(dir, Opts(1));
  EXPECT_FALSE(reopened.ok());
}

TEST(CorruptionTest, TruncatedManifestRejected) {
  std::vector<Event> events = MakeEvents(29, 60);
  const std::string dir = StoreDir("truncate_manifest");
  ASSERT_TRUE(
      ShardedGraphStore::Build(dir, kNumNodes, events, Opts(1)).ok());

  const std::string path = storage::ManifestPath(dir);
  fs::resize_file(path, fs::file_size(path) / 2);
  auto reopened = ShardedGraphStore::Open(dir, Opts(1));
  EXPECT_FALSE(reopened.ok());
}

/// XORs one byte of `path` in place (silent on-disk corruption).
void FlipByteAt(const std::string& path, int64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(offset);
  char c = 0;
  f.read(&c, 1);
  c ^= 0x10;
  f.seekp(offset);
  f.write(&c, 1);
}

TEST(CorruptionTest, AdjacencyBitflipCaughtByChecksum) {
  std::vector<Event> events = MakeEvents(31, 90);
  const std::string dir = StoreDir("bitflip_adj");
  ASSERT_TRUE(
      ShardedGraphStore::Build(dir, kNumNodes, events, Opts(1)).ok());

  // Flip a byte in the neighbor-record region (just before the footer), so
  // structural validation alone cannot notice — only the CRC can.
  const std::string path = storage::AdjacencyPath(dir, 0, 0);
  int64_t size = static_cast<int64_t>(fs::file_size(path));
  FlipByteAt(path, size - static_cast<int64_t>(sizeof(storage::FileFooter)) -
                       10);

  auto verified = ShardedGraphStore::Open(dir, Opts(1, /*verify=*/true));
  EXPECT_FALSE(verified.ok());
  // CPDG_STORE_VERIFY=0 trades the full-payload CRC for open latency;
  // structural validation still passes here, so the open succeeds.
  auto unverified = ShardedGraphStore::Open(dir, Opts(1, /*verify=*/false));
  EXPECT_TRUE(unverified.ok()) << unverified.status().message();
}

TEST(CorruptionTest, DeltaBitflipAlwaysCaught) {
  std::vector<Event> events = MakeEvents(37, 60);
  const std::string dir = StoreDir("bitflip_delta");
  auto store =
      ShardedGraphStore::Build(dir, kNumNodes, events, Opts(1));
  ASSERT_TRUE(store.ok()) << store.status().message();
  double t = store.value()->max_time();
  ASSERT_TRUE(store.value()->Append({{1, 2, t + 1.0}, {3, 4, t + 2.0}}).ok());
  store.value().reset();

  // Deltas are CRC-verified unconditionally — even with verification
  // disabled the corrupted suffix must be rejected.
  FlipByteAt(storage::DeltaPath(dir, 0), 70);
  EXPECT_FALSE(ShardedGraphStore::Open(dir, Opts(1, /*verify=*/true)).ok());
  EXPECT_FALSE(ShardedGraphStore::Open(dir, Opts(1, /*verify=*/false)).ok());
}

// ---------------------------------------------------------------------------
// End-to-end parity: the layers refactored onto GraphStore must be unable
// to tell the backends apart, bit for bit.

TEST(SamplerParityTest, SubgraphSamplesIdenticalAcrossBackends) {
  std::vector<Event> events = MakeEvents(41, 240);
  TemporalGraph ref = TemporalGraph::Create(kNumNodes, events).ValueOrDie();
  auto store = ShardedGraphStore::Build(StoreDir("sampler"), kNumNodes,
                                        events, Opts(4));
  ASSERT_TRUE(store.ok()) << store.status().message();

  sampler::StructuralTemporalSampler s_ref(&ref);
  sampler::StructuralTemporalSampler s_got(store.value().get());
  sampler::StructuralTemporalSampler::Options opts;
  opts.width = 3;
  opts.depth = 2;

  double t_query = ref.max_time() + 1.0;
  for (NodeId root = 0; root < kNumNodes; ++root) {
    for (auto bias : {sampler::TemporalBias::kChronological,
                      sampler::TemporalBias::kReverseChronological,
                      sampler::TemporalBias::kUniform}) {
      Rng rng_ref(100 + static_cast<uint64_t>(root));
      Rng rng_got(100 + static_cast<uint64_t>(root));
      auto a = s_ref.SampleEtaBfs(root, t_query, bias, opts, &rng_ref);
      auto b = s_got.SampleEtaBfs(root, t_query, bias, opts, &rng_got);
      EXPECT_EQ(a.nodes, b.nodes) << "eta-BFS root " << root;
      EXPECT_EQ(a.times, b.times) << "eta-BFS root " << root;
    }
    auto a = s_ref.SampleEpsilonDfs(root, t_query, opts);
    auto b = s_got.SampleEpsilonDfs(root, t_query, opts);
    EXPECT_EQ(a.nodes, b.nodes) << "eps-DFS root " << root;
    EXPECT_EQ(a.times, b.times) << "eps-DFS root " << root;
  }

  std::vector<NodeId> roots;
  std::vector<double> times;
  for (NodeId v = 0; v < kNumNodes; ++v) {
    roots.push_back(v);
    times.push_back(t_query);
  }
  auto nb_ref = sampler::SampleNeighborBatch(
      ref, roots, times, 4, sampler::NeighborStrategy::kMostRecent, nullptr);
  auto nb_got = sampler::SampleNeighborBatch(
      *store.value(), roots, times, 4,
      sampler::NeighborStrategy::kMostRecent, nullptr);
  EXPECT_EQ(nb_ref.nodes, nb_got.nodes);
  EXPECT_EQ(nb_ref.times, nb_got.times);
  EXPECT_EQ(nb_ref.valid, nb_got.valid);
}

void ExpectTensorsBitIdentical(const std::vector<ts::Tensor>& a,
                               const std::vector<ts::Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "tensor " << i;
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(),
                          sizeof(float) * static_cast<size_t>(a[i].size())),
              0)
        << "tensor " << i;
  }
}

dgnn::EncoderConfig ParityEncoderConfig() {
  dgnn::EncoderConfig config;
  config.num_nodes = kNumNodes;
  config.memory_dim = 8;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.num_neighbors = 3;
  return config;
}

TEST(PretrainParityTest, EpochIsBitIdenticalAcrossBackends) {
  std::vector<Event> events = MakeEvents(43, 200);
  TemporalGraph ref = TemporalGraph::Create(kNumNodes, events).ValueOrDie();
  auto store = ShardedGraphStore::Build(StoreDir("pretrain"), kNumNodes,
                                        events, Opts(4));
  ASSERT_TRUE(store.ok()) << store.status().message();

  core::CpdgConfig config;
  config.epochs = 1;
  config.batch_size = 50;
  config.num_checkpoints = 2;
  config.max_contrast_anchors = 8;

  auto run = [&](const GraphStore& g) {
    Rng rng(97);
    dgnn::DgnnEncoder encoder(ParityEncoderConfig(), &g, &rng);
    dgnn::LinkPredictor decoder(8, 8, &rng);
    core::CpdgPretrainer pretrainer(config, &rng);
    core::PretrainResult result = pretrainer.Pretrain(&encoder, &decoder, g);
    std::vector<ts::Tensor> params = encoder.Parameters();
    std::vector<ts::Tensor> dec = decoder.Parameters();
    params.insert(params.end(), dec.begin(), dec.end());
    return std::make_pair(result.log.epoch_losses, params);
  };

  auto [losses_ref, params_ref] = run(ref);
  auto [losses_got, params_got] = run(*store.value());
  EXPECT_EQ(losses_ref, losses_got);  // exact double equality
  ExpectTensorsBitIdentical(params_ref, params_got);
}

TEST(ServingParityTest, EmbeddingsBitIdenticalAcrossBackends) {
  std::vector<Event> events = MakeEvents(47, 160);
  TemporalGraph ref = TemporalGraph::Create(kNumNodes, events).ValueOrDie();
  auto store = ShardedGraphStore::Build(StoreDir("serving"), kNumNodes,
                                        events, Opts(4));
  ASSERT_TRUE(store.ok()) << store.status().message();

  // One reference encoder produces the checkpoint both engines load.
  Rng rng(53);
  dgnn::DgnnEncoder encoder(ParityEncoderConfig(), &ref, &rng);
  dgnn::LinkPredictor predictor(8, 16, &rng);
  {
    ts::InferenceModeGuard guard;
    encoder.ReplayEvents(ref.events(), /*batch_size=*/16);
  }
  std::vector<ts::Tensor> params = encoder.Parameters();
  std::vector<ts::Tensor> dec = predictor.Parameters();
  params.insert(params.end(), dec.begin(), dec.end());
  ts::SectionWriter writer;
  writer.Add(ts::kParamsSection, ts::EncodeTensorList(params).ValueOrDie());
  std::string memory_bytes;
  encoder.memory().SerializeTo(&memory_bytes);
  writer.Add(train::kMemorySection, memory_bytes);
  const std::string ckpt = ::testing::TempDir() + "/storage_serving.ckpt";
  ASSERT_TRUE(writer.WriteAtomic(ckpt).ok());

  auto engine_ref = serve::ServingEngine::FromCheckpoint(
      ParityEncoderConfig(), /*predictor_hidden=*/16, &ref, ckpt);
  ASSERT_TRUE(engine_ref.ok()) << engine_ref.status().message();
  auto engine_got = serve::ServingEngine::FromCheckpoint(
      ParityEncoderConfig(), /*predictor_hidden=*/16, store.value().get(),
      ckpt);
  ASSERT_TRUE(engine_got.ok()) << engine_got.status().message();

  std::vector<NodeId> probe = {0, 3, 7, 11, 23};
  double t_query = ref.max_time() + 1.0;
  auto emb_ref = engine_ref.value()->Embed(probe, t_query);
  auto emb_got = engine_got.value()->Embed(probe, t_query);
  ASSERT_TRUE(emb_ref.ok());
  ASSERT_TRUE(emb_got.ok());
  ExpectTensorsBitIdentical({emb_ref.value()}, {emb_got.value()});

  auto scores_ref =
      engine_ref.value()->ScoreLinks({0, 3}, {7, 11}, t_query);
  auto scores_got =
      engine_got.value()->ScoreLinks({0, 3}, {7, 11}, t_query);
  ASSERT_TRUE(scores_ref.ok());
  ASSERT_TRUE(scores_got.ok());
  EXPECT_EQ(scores_ref.value(), scores_got.value());  // exact doubles
}

}  // namespace
}  // namespace cpdg
