// End-to-end trace validation: run a small CPDG pre-training job with
// tracing enabled, export the profiler's Chrome trace-event JSON, and
// validate it structurally — well-formed JSON, complete ("X") events
// with sane timestamps, and spans covering the sampler, forward,
// backward, and optimizer stages. Also checks the metrics registry was
// fed by the same run (no separate counting path).

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/pretrainer.h"
#include "dgnn/trainer.h"
#include "graph/temporal_graph.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace_export.h"
#include "train/telemetry.h"
#include "util/atomic_file.h"

namespace cpdg {
namespace {

using graph::Event;
using graph::NodeId;
using graph::TemporalGraph;
using obs::ParsedTraceEvent;

// 30-node bipartite graph, as in train_golden_test.
TemporalGraph MakeGraph(uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events;
  for (int64_t i = 0; i < 400; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(15));
    NodeId b = 15 + static_cast<NodeId>(rng.NextBounded(15));
    events.push_back({a, b, static_cast<double>(i) * 0.002});
  }
  return TemporalGraph::Create(30, events).ValueOrDie();
}

TEST(TraceValidationTest, PretrainEmitsStructurallyValidChromeTrace) {
  obs::SetTraceEnabled(true);
  obs::Profiler::Global().Clear();
  int64_t matmuls_before =
      obs::MetricsRegistry::Global().counter("tensor.matmul.calls").value();
  int64_t bfs_calls_before =
      obs::MetricsRegistry::Global().counter("sampler.eta_bfs.calls").value();

  {
    TemporalGraph g = MakeGraph(11);
    Rng rng(13);
    dgnn::EncoderConfig ec =
        dgnn::EncoderConfig::Preset(dgnn::EncoderType::kTgn, g.num_nodes());
    ec.memory_dim = 8;
    ec.embed_dim = 8;
    ec.time_dim = 4;
    ec.num_neighbors = 3;
    dgnn::DgnnEncoder encoder(ec, &g, &rng);
    dgnn::LinkPredictor decoder(8, 8, &rng);
    core::CpdgConfig config;
    config.epochs = 1;
    config.batch_size = 100;
    config.num_checkpoints = 2;
    config.max_contrast_anchors = 8;
    core::CpdgPretrainer pretrainer(config, &rng);
    core::PretrainResult result = pretrainer.Pretrain(&encoder, &decoder, g);
    EXPECT_EQ(result.log.epoch_losses.size(), 1u);
  }

  obs::SetTraceEnabled(false);
  std::string path = ::testing::TempDir() + "/cpdg_pretrain_trace.json";
  ASSERT_TRUE(obs::Profiler::Global().WriteChromeTrace(path).ok());

  std::string json;
  ASSERT_TRUE(util::ReadFileToString(path, &json).ok());
  Result<std::vector<ParsedTraceEvent>> parsed = obs::ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<ParsedTraceEvent>& events = parsed.value();
  ASSERT_FALSE(events.empty());

  std::map<std::string, int64_t> span_counts;
  int64_t prev_ts = 0;
  for (const ParsedTraceEvent& e : events) {
    // Complete events only, with monotone start order and sane fields.
    EXPECT_EQ(e.ph, "X") << e.name;
    EXPECT_GE(e.ts_us, prev_ts);
    EXPECT_GE(e.dur_us, 0) << e.name;
    EXPECT_EQ(e.pid, 1);
    EXPECT_GE(e.tid, 0);
    prev_ts = e.ts_us;
    ++span_counts[e.name];
  }

  // The acceptance-critical stages all appear.
  for (const char* required :
       {"sampler/eta_bfs", "sampler/eps_dfs", "train/forward",
        "train/backward", "train/optimizer_step", "train/batch_assembly",
        "dgnn/memory_flush"}) {
    EXPECT_GT(span_counts[required], 0) << "missing span " << required;
  }
  // One epoch of 400 events at batch_size 100 → 4 forward/backward pairs.
  EXPECT_EQ(span_counts["train/forward"], 4);
  EXPECT_EQ(span_counts["train/backward"], 4);
  EXPECT_EQ(span_counts["train/optimizer_step"], 4);

  // Metrics were recorded by the same instrumented paths.
  EXPECT_GT(
      obs::MetricsRegistry::Global().counter("tensor.matmul.calls").value(),
      matmuls_before);
  EXPECT_GT(
      obs::MetricsRegistry::Global().counter("sampler.eta_bfs.calls").value(),
      bfs_calls_before);

  std::remove(path.c_str());
  obs::Profiler::Global().Clear();
}

TEST(TraceValidationTest, TelemetryCountersAreRegistryBacked) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  int64_t skips_before = registry.counter("train.nonfinite_skips").value();
  int64_t rollbacks_before = registry.counter("train.rollbacks").value();
  train::TrainTelemetry telemetry;
  telemetry.CountNonFiniteSkip();
  telemetry.CountNonFiniteSkip();
  telemetry.CountRollback();
  EXPECT_EQ(telemetry.nonfinite_skips, 2);
  EXPECT_EQ(telemetry.rollbacks, 1);
  EXPECT_EQ(registry.counter("train.nonfinite_skips").value(),
            skips_before + 2);
  EXPECT_EQ(registry.counter("train.rollbacks").value(), rollbacks_before + 1);
}

}  // namespace
}  // namespace cpdg
