#include "graph/temporal_graph.h"
#include "sampler/samplers.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace cpdg::sampler {
namespace {

using graph::Event;
using graph::TemporalGraph;

TemporalGraph MakeStarGraph() {
  // Node 0 interacts with 1..5 at times 1..5; nodes 1..5 each also talk to
  // node 6+i at time i - 0.5 so 2-hop expansion has somewhere to go.
  std::vector<Event> events;
  for (int i = 1; i <= 5; ++i) {
    events.push_back({0, i, static_cast<double>(i)});
    events.push_back({i, 5 + i, static_cast<double>(i) - 0.5});
  }
  return TemporalGraph::Create(11, events).ValueOrDie();
}

TEST(TemporalProbabilitiesTest, ChronologicalFavorsRecent) {
  std::vector<double> times = {1.0, 2.0, 3.0, 4.0};
  auto p = TemporalProbabilities(times, 5.0,
                                 TemporalBias::kChronological, 0.2);
  ASSERT_EQ(p.size(), 4u);
  for (size_t i = 1; i < p.size(); ++i) EXPECT_GT(p[i], p[i - 1]);
  double sum = 0.0;
  for (double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TemporalProbabilitiesTest, ReverseFavorsAgelong) {
  std::vector<double> times = {1.0, 2.0, 3.0, 4.0};
  auto p = TemporalProbabilities(times, 5.0,
                                 TemporalBias::kReverseChronological, 0.2);
  for (size_t i = 1; i < p.size(); ++i) EXPECT_LT(p[i], p[i - 1]);
}

TEST(TemporalProbabilitiesTest, UniformIsUniform) {
  std::vector<double> times = {1.0, 2.0, 3.0};
  auto p = TemporalProbabilities(times, 5.0, TemporalBias::kUniform, 0.2);
  for (double x : p) EXPECT_NEAR(x, 1.0 / 3.0, 1e-12);
}

TEST(TemporalProbabilitiesTest, DegenerateTimesFallBackToUniform) {
  std::vector<double> times = {2.0, 2.0, 2.0};
  auto p = TemporalProbabilities(times, 2.0,
                                 TemporalBias::kChronological, 0.2);
  for (double x : p) EXPECT_NEAR(x, 1.0 / 3.0, 1e-12);
}

TEST(TemporalProbabilitiesTest, TemperatureSharpens) {
  std::vector<double> times = {1.0, 4.0};
  auto warm = TemporalProbabilities(times, 5.0,
                                    TemporalBias::kChronological, 1.0);
  auto cold = TemporalProbabilities(times, 5.0,
                                    TemporalBias::kChronological, 0.05);
  EXPECT_GT(cold[1], warm[1]);
  EXPECT_GT(cold[1], 0.99);
}

TEST(EtaBfsTest, RespectsTimeCutoff) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 5;
  opts.depth = 1;
  Rng rng(1);
  // At t=3.5 only neighbors 1, 2, 3 of node 0 exist.
  auto sample = sampler.SampleEtaBfs(0, 3.5, TemporalBias::kUniform, opts,
                                     &rng);
  for (auto v : sample.nodes) {
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(sample.size(), 3);
}

TEST(EtaBfsTest, WidthLimitsPerHopSamples) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 2;
  opts.depth = 1;
  Rng rng(2);
  auto sample = sampler.SampleEtaBfs(0, 10.0, TemporalBias::kUniform, opts,
                                     &rng);
  EXPECT_LE(sample.size(), 2);
  EXPECT_GE(sample.size(), 1);
}

TEST(EtaBfsTest, ChronologicalBiasPrefersRecentNeighbors) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 1;
  opts.depth = 1;
  opts.temperature = 0.05;  // near-argmax
  Rng rng(3);
  int recent_hits = 0;
  for (int trial = 0; trial < 50; ++trial) {
    auto s = sampler.SampleEtaBfs(0, 10.0, TemporalBias::kChronological,
                                  opts, &rng);
    ASSERT_EQ(s.size(), 1);
    if (s.nodes[0] == 5) ++recent_hits;  // node 5 is the latest neighbor
  }
  EXPECT_GT(recent_hits, 40);
}

TEST(EtaBfsTest, ReverseBiasPrefersAgelongNeighbors) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 1;
  opts.depth = 1;
  opts.temperature = 0.05;
  Rng rng(4);
  int old_hits = 0;
  for (int trial = 0; trial < 50; ++trial) {
    auto s = sampler.SampleEtaBfs(
        0, 10.0, TemporalBias::kReverseChronological, opts, &rng);
    ASSERT_EQ(s.size(), 1);
    if (s.nodes[0] == 1) ++old_hits;  // node 1 is the oldest neighbor
  }
  EXPECT_GT(old_hits, 40);
}

TEST(EtaBfsTest, TwoHopReachesSecondRing) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 5;
  opts.depth = 2;
  Rng rng(5);
  auto s = sampler.SampleEtaBfs(0, 10.0, TemporalBias::kUniform, opts, &rng);
  bool has_second_ring = false;
  for (auto v : s.nodes) {
    if (v >= 6) has_second_ring = true;
  }
  EXPECT_TRUE(has_second_ring);
}

TEST(EtaBfsTest, CliqueFrontierIsDeduplicated) {
  // Dense clique: every node is a neighbor of every other, so with the old
  // traversal an already-seen drawn neighbor was still pushed into the next
  // frontier and re-expanded at every hop, growing the frontier towards
  // width^depth duplicate entries. The fixed traversal only expands a node
  // the first time it is discovered, so the total number of frontier
  // expansions is bounded by the nodes added plus the root.
  std::vector<Event> events;
  for (int i = 0; i < 10; ++i) {
    for (int j = i + 1; j < 10; ++j) {
      events.push_back({i, j, 1.0 + 0.01 * (i * 10 + j)});
    }
  }
  TemporalGraph g = TemporalGraph::Create(10, events).ValueOrDie();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 6;
  opts.depth = 5;
  Rng rng(17);
  auto s = sampler.SampleEtaBfs(0, 100.0, TemporalBias::kChronological, opts,
                                &rng);
  EXPECT_LE(s.frontier_expansions, s.size() + 1);
  std::set<graph::NodeId> unique(s.nodes.begin(), s.nodes.end());
  EXPECT_EQ(static_cast<int64_t>(unique.size()), s.size());
  EXPECT_EQ(unique.count(0), 0u);  // the root is never re-added
}

TEST(EtaBfsTest, IsolatedRootYieldsEmpty) {
  auto g = graph::TemporalGraph::Create(3, {{0, 1, 1.0}}).ValueOrDie();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  Rng rng(6);
  auto s = sampler.SampleEtaBfs(2, 5.0, TemporalBias::kUniform, opts, &rng);
  EXPECT_TRUE(s.empty());
}

TEST(EpsilonDfsTest, PicksMostRecentNeighbors) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 2;
  opts.depth = 1;
  auto s = sampler.SampleEpsilonDfs(0, 10.0, opts);
  // Most recent two neighbors of node 0 are 4 and 5.
  std::set<graph::NodeId> got(s.nodes.begin(), s.nodes.end());
  EXPECT_TRUE(got.count(4) == 1);
  EXPECT_TRUE(got.count(5) == 1);
  EXPECT_EQ(got.size(), 2u);
}

TEST(EpsilonDfsTest, ExploresNewestNeighborDeepestFirst) {
  // Hand-built graph with a known visit order. Node 0 interacted with 1
  // (t=1) and 2 (t=2); node 2 leads to 3 (t=1.5) and node 1 leads to 4
  // (t=0.5). Eq. 5 takes the chronological tail, so the *newest* sampled
  // neighbor (2) must be explored deepest-first: its descendant 3 is
  // visited before the older branch's descendant 4. The pre-fix traversal
  // pushed newest-first onto the LIFO stack, which explored the oldest
  // branch deepest-first and yielded [2, 1, 4, 3].
  std::vector<Event> events = {
      {0, 1, 1.0}, {0, 2, 2.0}, {1, 4, 0.5}, {2, 3, 1.5}};
  TemporalGraph g = TemporalGraph::Create(5, events).ValueOrDie();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 2;
  opts.depth = 2;
  auto s = sampler.SampleEpsilonDfs(0, 10.0, opts);
  EXPECT_EQ(std::vector<graph::NodeId>(s.nodes.begin(), s.nodes.end()),
            (std::vector<graph::NodeId>{1, 2, 3, 4}));
  EXPECT_EQ(std::vector<double>(s.times.begin(), s.times.end()),
            (std::vector<double>{1.0, 2.0, 1.5, 0.5}));
}

TEST(EpsilonDfsTest, IsDeterministic) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 2;
  opts.depth = 2;
  auto a = sampler.SampleEpsilonDfs(0, 10.0, opts);
  auto b = sampler.SampleEpsilonDfs(0, 10.0, opts);
  EXPECT_EQ(a.nodes, b.nodes);
}

TEST(EpsilonDfsTest, DepthExpandsRecursively) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 2;
  opts.depth = 2;
  auto s = sampler.SampleEpsilonDfs(0, 10.0, opts);
  bool has_second_ring = false;
  for (auto v : s.nodes) {
    if (v >= 6) has_second_ring = true;
  }
  EXPECT_TRUE(has_second_ring);
}

TEST(NeighborBatchTest, MostRecentTakesChronologicalTail) {
  TemporalGraph g = MakeStarGraph();
  auto batch = SampleNeighborBatch(g, {0}, {10.0}, 2,
                                   NeighborStrategy::kMostRecent, nullptr);
  ASSERT_EQ(batch.nodes.size(), 2u);
  EXPECT_EQ(batch.nodes[0], 4);
  EXPECT_EQ(batch.nodes[1], 5);
  EXPECT_TRUE(batch.valid[0] && batch.valid[1]);
}

TEST(NeighborBatchTest, PadsWhenFewNeighbors) {
  auto g = graph::TemporalGraph::Create(3, {{0, 1, 1.0}}).ValueOrDie();
  auto batch = SampleNeighborBatch(g, {0, 2}, {5.0, 5.0}, 3,
                                   NeighborStrategy::kMostRecent, nullptr);
  EXPECT_EQ(batch.valid[0], 1);
  EXPECT_EQ(batch.valid[1], 0);
  EXPECT_EQ(batch.valid[2], 0);
  // Node 2 is isolated: all padding.
  EXPECT_EQ(batch.valid[3] + batch.valid[4] + batch.valid[5], 0);
}

TEST(NeighborBatchTest, UniformStaysBeforeQueryTime) {
  TemporalGraph g = MakeStarGraph();
  Rng rng(7);
  auto batch = SampleNeighborBatch(g, {0}, {3.5}, 10,
                                   NeighborStrategy::kUniform, &rng);
  for (size_t i = 0; i < batch.nodes.size(); ++i) {
    if (batch.valid[i]) {
      EXPECT_LT(batch.times[i], 3.5);
    }
  }
}

TEST(RandomWalkTest, StaysInThePast) {
  TemporalGraph g = MakeStarGraph();
  Rng rng(8);
  auto walk = TemporalRandomWalk(g, 0, 10.0, 4, &rng);
  EXPECT_GE(walk.size(), 2u);
  EXPECT_EQ(walk[0], 0);
}

TEST(RandomWalkTest, IsolatedNodeWalksNowhere) {
  auto g = graph::TemporalGraph::Create(3, {{0, 1, 1.0}}).ValueOrDie();
  Rng rng(9);
  auto walk = TemporalRandomWalk(g, 2, 5.0, 4, &rng);
  EXPECT_EQ(walk.size(), 1u);
}

}  // namespace
}  // namespace cpdg::sampler
