#include "sampler/samplers.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace cpdg::sampler {
namespace {

using graph::Event;
using graph::TemporalGraph;

TemporalGraph MakeStarGraph() {
  // Node 0 interacts with 1..5 at times 1..5; nodes 1..5 each also talk to
  // node 6+i at time i - 0.5 so 2-hop expansion has somewhere to go.
  std::vector<Event> events;
  for (int i = 1; i <= 5; ++i) {
    events.push_back({0, i, static_cast<double>(i)});
    events.push_back({i, 5 + i, static_cast<double>(i) - 0.5});
  }
  return TemporalGraph::Create(11, events).ValueOrDie();
}

TEST(TemporalProbabilitiesTest, ChronologicalFavorsRecent) {
  std::vector<double> times = {1.0, 2.0, 3.0, 4.0};
  auto p = TemporalProbabilities(times, 5.0,
                                 TemporalBias::kChronological, 0.2);
  ASSERT_EQ(p.size(), 4u);
  for (size_t i = 1; i < p.size(); ++i) EXPECT_GT(p[i], p[i - 1]);
  double sum = 0.0;
  for (double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TemporalProbabilitiesTest, ReverseFavorsAgelong) {
  std::vector<double> times = {1.0, 2.0, 3.0, 4.0};
  auto p = TemporalProbabilities(times, 5.0,
                                 TemporalBias::kReverseChronological, 0.2);
  for (size_t i = 1; i < p.size(); ++i) EXPECT_LT(p[i], p[i - 1]);
}

TEST(TemporalProbabilitiesTest, UniformIsUniform) {
  std::vector<double> times = {1.0, 2.0, 3.0};
  auto p = TemporalProbabilities(times, 5.0, TemporalBias::kUniform, 0.2);
  for (double x : p) EXPECT_NEAR(x, 1.0 / 3.0, 1e-12);
}

TEST(TemporalProbabilitiesTest, DegenerateTimesFallBackToUniform) {
  std::vector<double> times = {2.0, 2.0, 2.0};
  auto p = TemporalProbabilities(times, 2.0,
                                 TemporalBias::kChronological, 0.2);
  for (double x : p) EXPECT_NEAR(x, 1.0 / 3.0, 1e-12);
}

TEST(TemporalProbabilitiesTest, TemperatureSharpens) {
  std::vector<double> times = {1.0, 4.0};
  auto warm = TemporalProbabilities(times, 5.0,
                                    TemporalBias::kChronological, 1.0);
  auto cold = TemporalProbabilities(times, 5.0,
                                    TemporalBias::kChronological, 0.05);
  EXPECT_GT(cold[1], warm[1]);
  EXPECT_GT(cold[1], 0.99);
}

TEST(EtaBfsTest, RespectsTimeCutoff) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 5;
  opts.depth = 1;
  Rng rng(1);
  // At t=3.5 only neighbors 1, 2, 3 of node 0 exist.
  auto sample = sampler.SampleEtaBfs(0, 3.5, TemporalBias::kUniform, opts,
                                     &rng);
  for (auto v : sample.nodes) {
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(sample.size(), 3);
}

TEST(EtaBfsTest, WidthLimitsPerHopSamples) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 2;
  opts.depth = 1;
  Rng rng(2);
  auto sample = sampler.SampleEtaBfs(0, 10.0, TemporalBias::kUniform, opts,
                                     &rng);
  EXPECT_LE(sample.size(), 2);
  EXPECT_GE(sample.size(), 1);
}

TEST(EtaBfsTest, ChronologicalBiasPrefersRecentNeighbors) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 1;
  opts.depth = 1;
  opts.temperature = 0.05;  // near-argmax
  Rng rng(3);
  int recent_hits = 0;
  for (int trial = 0; trial < 50; ++trial) {
    auto s = sampler.SampleEtaBfs(0, 10.0, TemporalBias::kChronological,
                                  opts, &rng);
    ASSERT_EQ(s.size(), 1);
    if (s.nodes[0] == 5) ++recent_hits;  // node 5 is the latest neighbor
  }
  EXPECT_GT(recent_hits, 40);
}

TEST(EtaBfsTest, ReverseBiasPrefersAgelongNeighbors) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 1;
  opts.depth = 1;
  opts.temperature = 0.05;
  Rng rng(4);
  int old_hits = 0;
  for (int trial = 0; trial < 50; ++trial) {
    auto s = sampler.SampleEtaBfs(
        0, 10.0, TemporalBias::kReverseChronological, opts, &rng);
    ASSERT_EQ(s.size(), 1);
    if (s.nodes[0] == 1) ++old_hits;  // node 1 is the oldest neighbor
  }
  EXPECT_GT(old_hits, 40);
}

TEST(EtaBfsTest, TwoHopReachesSecondRing) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 5;
  opts.depth = 2;
  Rng rng(5);
  auto s = sampler.SampleEtaBfs(0, 10.0, TemporalBias::kUniform, opts, &rng);
  bool has_second_ring = false;
  for (auto v : s.nodes) {
    if (v >= 6) has_second_ring = true;
  }
  EXPECT_TRUE(has_second_ring);
}

TEST(EtaBfsTest, IsolatedRootYieldsEmpty) {
  auto g = graph::TemporalGraph::Create(3, {{0, 1, 1.0}}).ValueOrDie();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  Rng rng(6);
  auto s = sampler.SampleEtaBfs(2, 5.0, TemporalBias::kUniform, opts, &rng);
  EXPECT_TRUE(s.empty());
}

TEST(EpsilonDfsTest, PicksMostRecentNeighbors) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 2;
  opts.depth = 1;
  auto s = sampler.SampleEpsilonDfs(0, 10.0, opts);
  // Most recent two neighbors of node 0 are 4 and 5.
  std::set<graph::NodeId> got(s.nodes.begin(), s.nodes.end());
  EXPECT_TRUE(got.count(4) == 1);
  EXPECT_TRUE(got.count(5) == 1);
  EXPECT_EQ(got.size(), 2u);
}

TEST(EpsilonDfsTest, IsDeterministic) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 2;
  opts.depth = 2;
  auto a = sampler.SampleEpsilonDfs(0, 10.0, opts);
  auto b = sampler.SampleEpsilonDfs(0, 10.0, opts);
  EXPECT_EQ(a.nodes, b.nodes);
}

TEST(EpsilonDfsTest, DepthExpandsRecursively) {
  TemporalGraph g = MakeStarGraph();
  StructuralTemporalSampler sampler(&g);
  StructuralTemporalSampler::Options opts;
  opts.width = 2;
  opts.depth = 2;
  auto s = sampler.SampleEpsilonDfs(0, 10.0, opts);
  bool has_second_ring = false;
  for (auto v : s.nodes) {
    if (v >= 6) has_second_ring = true;
  }
  EXPECT_TRUE(has_second_ring);
}

TEST(NeighborBatchTest, MostRecentTakesChronologicalTail) {
  TemporalGraph g = MakeStarGraph();
  auto batch = SampleNeighborBatch(g, {0}, {10.0}, 2,
                                   NeighborStrategy::kMostRecent, nullptr);
  ASSERT_EQ(batch.nodes.size(), 2u);
  EXPECT_EQ(batch.nodes[0], 4);
  EXPECT_EQ(batch.nodes[1], 5);
  EXPECT_TRUE(batch.valid[0] && batch.valid[1]);
}

TEST(NeighborBatchTest, PadsWhenFewNeighbors) {
  auto g = graph::TemporalGraph::Create(3, {{0, 1, 1.0}}).ValueOrDie();
  auto batch = SampleNeighborBatch(g, {0, 2}, {5.0, 5.0}, 3,
                                   NeighborStrategy::kMostRecent, nullptr);
  EXPECT_EQ(batch.valid[0], 1);
  EXPECT_EQ(batch.valid[1], 0);
  EXPECT_EQ(batch.valid[2], 0);
  // Node 2 is isolated: all padding.
  EXPECT_EQ(batch.valid[3] + batch.valid[4] + batch.valid[5], 0);
}

TEST(NeighborBatchTest, UniformStaysBeforeQueryTime) {
  TemporalGraph g = MakeStarGraph();
  Rng rng(7);
  auto batch = SampleNeighborBatch(g, {0}, {3.5}, 10,
                                   NeighborStrategy::kUniform, &rng);
  for (size_t i = 0; i < batch.nodes.size(); ++i) {
    if (batch.valid[i]) {
      EXPECT_LT(batch.times[i], 3.5);
    }
  }
}

TEST(RandomWalkTest, StaysInThePast) {
  TemporalGraph g = MakeStarGraph();
  Rng rng(8);
  auto walk = TemporalRandomWalk(g, 0, 10.0, 4, &rng);
  EXPECT_GE(walk.size(), 2u);
  EXPECT_EQ(walk[0], 0);
}

TEST(RandomWalkTest, IsolatedNodeWalksNowhere) {
  auto g = graph::TemporalGraph::Create(3, {{0, 1, 1.0}}).ValueOrDie();
  Rng rng(9);
  auto walk = TemporalRandomWalk(g, 2, 5.0, 4, &rng);
  EXPECT_EQ(walk.size(), 1u);
}

}  // namespace
}  // namespace cpdg::sampler
