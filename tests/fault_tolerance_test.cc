// Fault-tolerance suite for the crash-safe training runtime: kill-and-
// resume bit-exactness of CPDG pre-training, the non-finite-loss health
// monitor policies, and injected storage faults (crash mid-save, failed
// rename, silent bit flips) against the atomic checkpoint publish path.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/pretrainer.h"
#include "graph/temporal_graph.h"
#include "tensor/checkpoint_container.h"
#include "tensor/ops.h"
#include "train/train_loop.h"
#include "util/atomic_file.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace cpdg {
namespace {

namespace ts = cpdg::tensor;
using graph::Event;
using graph::NodeId;
using graph::TemporalGraph;

/// Restores the default global pool size when a test scope ends.
struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) {
    util::ThreadPool::SetGlobalNumThreads(n);
  }
  ~ThreadCountGuard() {
    util::ThreadPool::SetGlobalNumThreads(
        util::ThreadPool::DefaultNumThreads());
  }
};

// Same workload as the CPDG pre-training golden test: a 30-node bipartite
// graph, 400 events, 8 batches per epoch over 2 epochs.
TemporalGraph MakeGraphA(uint64_t seed, int64_t events_count = 400) {
  Rng rng(seed);
  std::vector<Event> events;
  for (int64_t i = 0; i < events_count; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(15));
    NodeId b = 15 + static_cast<NodeId>(rng.NextBounded(15));
    events.push_back({a, b, static_cast<double>(i) * 0.002});
  }
  return TemporalGraph::Create(30, events).ValueOrDie();
}

dgnn::EncoderConfig SmallConfig(int64_t num_nodes) {
  dgnn::EncoderConfig c =
      dgnn::EncoderConfig::Preset(dgnn::EncoderType::kTgn, num_nodes);
  c.memory_dim = 8;
  c.embed_dim = 8;
  c.time_dim = 4;
  c.num_neighbors = 3;
  return c;
}

/// Everything a bit-exactness comparison needs from one pre-training run.
struct PretrainCapture {
  core::PretrainResult result;
  std::vector<float> params;  // encoder then decoder, concatenated
  std::string memory_bytes;
  std::string evolution_bytes;
};

/// Runs CPDG pre-training from identical seeds with the given crash-safety
/// knobs. Every run constructs fresh graph/encoder/decoder/RNG objects, so
/// a `resume` run only shares state with its predecessor through the
/// checkpoint file — exactly what a process restart would see.
PretrainCapture RunPretrain(const std::string& checkpoint_path,
                            int64_t checkpoint_every, int64_t max_batches,
                            bool resume) {
  TemporalGraph g = MakeGraphA(11);
  Rng rng(13);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  dgnn::LinkPredictor decoder(8, 8, &rng);
  core::CpdgConfig config;
  config.epochs = 2;
  config.batch_size = 50;
  config.num_checkpoints = 4;
  config.max_contrast_anchors = 16;
  config.checkpoint_path = checkpoint_path;
  config.checkpoint_every_batches = checkpoint_every;
  config.resume = resume;
  config.max_batches = max_batches;
  core::CpdgPretrainer pretrainer(config, &rng);

  PretrainCapture cap;
  cap.result = pretrainer.Pretrain(&encoder, &decoder, g);
  for (const ts::Tensor& t : encoder.Parameters()) {
    cap.params.insert(cap.params.end(), t.data(), t.data() + t.size());
  }
  for (const ts::Tensor& t : decoder.Parameters()) {
    cap.params.insert(cap.params.end(), t.data(), t.data() + t.size());
  }
  encoder.memory().SerializeTo(&cap.memory_bytes);
  cap.result.checkpoints.SerializeTo(&cap.evolution_bytes);
  return cap;
}

/// Kill a pre-training run mid-epoch (graceful stop after max_batches, then
/// all objects are discarded), resume from the checkpoint with fresh
/// objects, and require the final state to be bit-identical to a run that
/// was never interrupted.
void CheckKillAndResumeBitIdentical(int num_threads) {
  ThreadCountGuard guard(num_threads);
  const std::string ckpt = ::testing::TempDir() + "ft_resume_t" +
                           std::to_string(num_threads) + ".ckpt";
  std::remove(ckpt.c_str());

  PretrainCapture golden =
      RunPretrain(/*checkpoint_path=*/"", /*checkpoint_every=*/0,
                  /*max_batches=*/0, /*resume=*/false);
  ASSERT_TRUE(golden.result.log.status.ok());
  ASSERT_EQ(golden.result.log.epoch_losses.size(), 2u);

  // 16 batches total (2 epochs x 8); die after 11, checkpointing every 3.
  // The last save lands at global batch 9 = epoch 1, batch 1 — a mid-epoch
  // cursor, so resume must restore partial-epoch accumulators and encoder
  // memory, not just parameters.
  PretrainCapture killed = RunPretrain(ckpt, /*checkpoint_every=*/3,
                                       /*max_batches=*/11, /*resume=*/false);
  ASSERT_TRUE(killed.result.log.status.ok());
  EXPECT_TRUE(killed.result.log.stopped_early);
  EXPECT_TRUE(killed.result.log.epoch_losses.size() < 2u);
  EXPECT_GE(killed.result.log.checkpoint_saves, 3);
  ASSERT_TRUE(util::FileExists(ckpt));

  PretrainCapture resumed = RunPretrain(ckpt, /*checkpoint_every=*/3,
                                        /*max_batches=*/0, /*resume=*/true);
  ASSERT_TRUE(resumed.result.log.status.ok())
      << resumed.result.log.status.ToString();
  EXPECT_FALSE(resumed.result.log.stopped_early);

  // Losses, telemetry counts, parameters, memory (including pending
  // message queues and last-update times) and the recorded evolution
  // checkpoints must all be bitwise identical.
  ASSERT_EQ(resumed.result.log.epoch_losses.size(),
            golden.result.log.epoch_losses.size());
  for (size_t i = 0; i < golden.result.log.epoch_losses.size(); ++i) {
    EXPECT_EQ(resumed.result.log.epoch_losses[i],
              golden.result.log.epoch_losses[i])
        << "epoch " << i << " loss differs after resume";
  }
  ASSERT_EQ(resumed.result.log.epochs.size(),
            golden.result.log.epochs.size());
  for (size_t i = 0; i < golden.result.log.epochs.size(); ++i) {
    EXPECT_EQ(resumed.result.log.epochs[i].num_batches,
              golden.result.log.epochs[i].num_batches);
    EXPECT_EQ(resumed.result.log.epochs[i].num_steps,
              golden.result.log.epochs[i].num_steps);
    EXPECT_EQ(resumed.result.log.epochs[i].mean_loss,
              golden.result.log.epochs[i].mean_loss);
    EXPECT_EQ(resumed.result.log.epochs[i].mean_grad_norm_pre_clip,
              golden.result.log.epochs[i].mean_grad_norm_pre_clip);
  }
  ASSERT_EQ(resumed.params.size(), golden.params.size());
  EXPECT_EQ(0, std::memcmp(resumed.params.data(), golden.params.data(),
                           golden.params.size() * sizeof(float)));
  EXPECT_EQ(resumed.memory_bytes, golden.memory_bytes);
  EXPECT_EQ(resumed.evolution_bytes, golden.evolution_bytes);
  std::remove(ckpt.c_str());
}

TEST(FaultToleranceTest, KillAndResumeBitIdenticalSingleThread) {
  CheckKillAndResumeBitIdentical(1);
}

TEST(FaultToleranceTest, KillAndResumeBitIdenticalFourThreads) {
  CheckKillAndResumeBitIdentical(4);
}

TEST(FaultToleranceTest, ResumeFromCorruptCheckpointFailsCleanly) {
  const std::string ckpt = ::testing::TempDir() + "ft_corrupt.ckpt";
  ASSERT_TRUE(util::AtomicWriteFile(ckpt, "this is not a checkpoint").ok());
  PretrainCapture run = RunPretrain(ckpt, /*checkpoint_every=*/3,
                                    /*max_batches=*/0, /*resume=*/true);
  EXPECT_FALSE(run.result.log.status.ok());
  EXPECT_TRUE(run.result.log.epoch_losses.empty());
  std::remove(ckpt.c_str());
}

// --- Health monitor -------------------------------------------------------

/// One-parameter quadratic toy problem; `nan_on_call` poisons the loss on
/// the n-th invocation of the step function (1-based, 0 = never).
struct ToyLoop {
  explicit ToyLoop(train::TrainLoopOptions options)
      : rng(5),
        w(ts::Tensor::RandomUniform(2, 2, 0.5f, &rng,
                                    /*requires_grad=*/true)),
        loop({w}, options) {}

  train::TrainTelemetry Run(int64_t steps_per_epoch, int nan_on_call) {
    int calls = 0;
    return loop.RunSteps(
        steps_per_epoch,
        [&](const train::BatchContext&) -> std::optional<ts::Tensor> {
          ++calls;
          ts::Tensor loss = ts::Mean(ts::Mul(w, w));
          if (calls == nan_on_call) {
            return ts::MulScalar(
                loss, std::numeric_limits<float>::quiet_NaN());
          }
          return loss;
        });
  }

  Rng rng;
  ts::Tensor w;
  train::TrainLoop loop;
};

TEST(HealthMonitorTest, HaltReturnsInternalStatus) {
  train::TrainLoopOptions options;
  options.epochs = 1;
  options.non_finite_policy = train::NonFinitePolicy::kHalt;
  ToyLoop toy(options);
  train::TrainTelemetry telemetry = toy.Run(/*steps_per_epoch=*/4,
                                            /*nan_on_call=*/2);
  EXPECT_EQ(telemetry.status.code(), StatusCode::kInternal);
  EXPECT_TRUE(telemetry.epochs.empty());  // halted inside the first epoch
  EXPECT_EQ(telemetry.nonfinite_skips, 0);
}

TEST(HealthMonitorTest, SkipBatchCountsAndCompletes) {
  train::TrainLoopOptions options;
  options.epochs = 1;
  options.non_finite_policy = train::NonFinitePolicy::kSkipBatch;
  ToyLoop toy(options);
  train::TrainTelemetry telemetry = toy.Run(/*steps_per_epoch=*/4,
                                            /*nan_on_call=*/2);
  ASSERT_TRUE(telemetry.status.ok()) << telemetry.status.ToString();
  EXPECT_EQ(telemetry.nonfinite_skips, 1);
  ASSERT_EQ(telemetry.epochs.size(), 1u);
  EXPECT_EQ(telemetry.epochs[0].num_batches, 4);
  EXPECT_EQ(telemetry.epochs[0].num_steps, 3);  // poisoned batch not stepped
}

TEST(HealthMonitorTest, RollbackRestoresCheckpointAndCompletes) {
  const std::string ckpt = ::testing::TempDir() + "ft_rollback.ckpt";
  std::remove(ckpt.c_str());
  train::TrainLoopOptions options;
  options.epochs = 1;
  options.non_finite_policy = train::NonFinitePolicy::kRollbackToCheckpoint;
  options.checkpoint_path = ckpt;
  options.checkpoint_every_batches = 1;
  ToyLoop toy(options);
  // The 3rd call blows up; by then the checkpoint holds the cursor after
  // step 1 (call counting makes the replayed step finite the second time).
  train::TrainTelemetry telemetry = toy.Run(/*steps_per_epoch=*/5,
                                            /*nan_on_call=*/3);
  ASSERT_TRUE(telemetry.status.ok()) << telemetry.status.ToString();
  EXPECT_EQ(telemetry.rollbacks, 1);
  ASSERT_EQ(telemetry.epochs.size(), 1u);
  EXPECT_EQ(telemetry.epochs[0].num_batches, 5);
  EXPECT_EQ(telemetry.epochs[0].num_steps, 5);
  std::remove(ckpt.c_str());
}

TEST(HealthMonitorTest, RollbackWithoutCheckpointingHalts) {
  train::TrainLoopOptions options;
  options.epochs = 1;
  options.non_finite_policy = train::NonFinitePolicy::kRollbackToCheckpoint;
  ToyLoop toy(options);
  train::TrainTelemetry telemetry = toy.Run(/*steps_per_epoch=*/4,
                                            /*nan_on_call=*/2);
  EXPECT_EQ(telemetry.status.code(), StatusCode::kInternal);
  EXPECT_EQ(telemetry.rollbacks, 0);
}

TEST(HealthMonitorTest, DeterministicBlowupExhaustsRollbackBudget) {
  const std::string ckpt = ::testing::TempDir() + "ft_rollback_budget.ckpt";
  std::remove(ckpt.c_str());
  train::TrainLoopOptions options;
  options.epochs = 1;
  options.non_finite_policy = train::NonFinitePolicy::kRollbackToCheckpoint;
  options.checkpoint_path = ckpt;
  options.checkpoint_every_batches = 1;
  options.max_rollbacks = 2;
  ToyLoop toy(options);
  // Poison by *position*: every replay of step 2 is non-finite again, so
  // the rollback loop must give up after max_rollbacks instead of spinning.
  train::TrainTelemetry telemetry = toy.loop.RunSteps(
      4, [&](const train::BatchContext& ctx) -> std::optional<ts::Tensor> {
        ts::Tensor loss = ts::Mean(ts::Mul(toy.w, toy.w));
        if (ctx.batch_index == 2) {
          return ts::MulScalar(loss,
                               std::numeric_limits<float>::quiet_NaN());
        }
        return loss;
      });
  EXPECT_EQ(telemetry.status.code(), StatusCode::kInternal);
  EXPECT_EQ(telemetry.rollbacks, 2);
  std::remove(ckpt.c_str());
}

TEST(HealthMonitorTest, ResumeRunShapeMismatchIsRejected) {
  const std::string ckpt = ::testing::TempDir() + "ft_shape.ckpt";
  std::remove(ckpt.c_str());
  train::TrainLoopOptions options;
  options.epochs = 1;
  options.checkpoint_path = ckpt;
  options.checkpoint_every_batches = 1;
  {
    ToyLoop toy(options);
    ASSERT_TRUE(toy.Run(/*steps_per_epoch=*/4, /*nan_on_call=*/0)
                    .status.ok());
  }
  ToyLoop other(options);
  ASSERT_TRUE(other.loop.ResumeFrom(ckpt).ok());
  // Same checkpoint, different steps_per_epoch: the progress section must
  // refuse to fast-forward into a differently shaped run.
  train::TrainTelemetry telemetry = other.loop.RunSteps(
      7, [&](const train::BatchContext&) -> std::optional<ts::Tensor> {
        return ts::Mean(ts::Mul(other.w, other.w));
      });
  EXPECT_EQ(telemetry.status.code(), StatusCode::kFailedPrecondition);
  std::remove(ckpt.c_str());
}

// --- Injected storage faults ---------------------------------------------

TEST(FaultInjectionTest, CrashMidWriteLeavesPreviousFileIntact) {
  const std::string path = ::testing::TempDir() + "ft_crash.bin";
  ASSERT_TRUE(util::AtomicWriteFile(path, "old-payload").ok());
  {
    util::FaultInjector::Config fault;
    fault.crash_after_bytes = 5;
    util::FaultInjector::Scope scope(fault);
    Status status = util::AtomicWriteFile(path, "new-payload-longer");
    EXPECT_EQ(status.code(), StatusCode::kIoError);
  }
  std::string content;
  ASSERT_TRUE(util::ReadFileToString(path, &content).ok());
  EXPECT_EQ(content, "old-payload");
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, FailedRenameLeavesPreviousFileIntact) {
  const std::string path = ::testing::TempDir() + "ft_rename.bin";
  ASSERT_TRUE(util::AtomicWriteFile(path, "old-payload").ok());
  {
    util::FaultInjector::Config fault;
    fault.fail_rename = true;
    util::FaultInjector::Scope scope(fault);
    Status status = util::AtomicWriteFile(path, "new-payload");
    EXPECT_EQ(status.code(), StatusCode::kIoError);
  }
  std::string content;
  ASSERT_TRUE(util::ReadFileToString(path, &content).ok());
  EXPECT_EQ(content, "old-payload");
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, SilentBitflipIsCaughtByChecksumOnLoad) {
  const std::string path = ::testing::TempDir() + "ft_bitflip.ckpt";
  tensor::SectionWriter writer;
  writer.Add("blob", std::string(64, 'x'));
  const size_t file_size = writer.Finish().size();
  {
    util::FaultInjector::Config fault;
    // Corrupt the last payload byte on its way to disk; the save itself
    // must still report success (silent corruption).
    fault.bitflip_byte = static_cast<int64_t>(file_size) - 1;
    util::FaultInjector::Scope scope(fault);
    ASSERT_TRUE(writer.WriteAtomic(path).ok());
  }
  Result<tensor::SectionReader> reader = tensor::SectionReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, TrainingSurvivesCheckpointSaveFailures) {
  const std::string ckpt = ::testing::TempDir() + "ft_save_fail.ckpt";
  std::remove(ckpt.c_str());
  train::TrainLoopOptions options;
  options.epochs = 1;
  options.checkpoint_path = ckpt;
  options.checkpoint_every_batches = 1;
  ToyLoop toy(options);
  util::FaultInjector::Config fault;
  fault.crash_after_bytes = 3;
  util::FaultInjector::Scope scope(fault);
  train::TrainTelemetry telemetry = toy.Run(/*steps_per_epoch=*/4,
                                            /*nan_on_call=*/0);
  // Every save fails, but training itself completes untouched.
  ASSERT_TRUE(telemetry.status.ok()) << telemetry.status.ToString();
  EXPECT_EQ(telemetry.checkpoint_saves, 0);
  EXPECT_EQ(telemetry.checkpoint_failures, 4);
  ASSERT_EQ(telemetry.epochs.size(), 1u);
  EXPECT_EQ(telemetry.epochs[0].num_steps, 4);
  EXPECT_FALSE(util::FileExists(ckpt));
}

TEST(FaultInjectionTest, CrashDuringPretrainSaveKeepsLastGoodCheckpoint) {
  const std::string ckpt = ::testing::TempDir() + "ft_pretrain_crash.ckpt";
  std::remove(ckpt.c_str());
  // First segment writes good checkpoints (last at global batch 9).
  PretrainCapture killed = RunPretrain(ckpt, /*checkpoint_every=*/3,
                                       /*max_batches=*/11, /*resume=*/false);
  ASSERT_TRUE(killed.result.log.stopped_early);
  std::string good_checkpoint;
  ASSERT_TRUE(util::ReadFileToString(ckpt, &good_checkpoint).ok());

  // Second segment resumes but every subsequent save dies mid-write: the
  // on-disk checkpoint must remain byte-for-byte the last good one, and
  // the run itself must still finish with the bit-exact result.
  PretrainCapture golden =
      RunPretrain(/*checkpoint_path=*/"", /*checkpoint_every=*/0,
                  /*max_batches=*/0, /*resume=*/false);
  std::string after_faults;
  {
    util::FaultInjector::Config fault;
    fault.crash_after_bytes = 10;
    util::FaultInjector::Scope scope(fault);
    PretrainCapture resumed = RunPretrain(ckpt, /*checkpoint_every=*/3,
                                          /*max_batches=*/0, /*resume=*/true);
    ASSERT_TRUE(resumed.result.log.status.ok());
    EXPECT_GT(resumed.result.log.checkpoint_failures, 0);
    // The restored telemetry carries the two successful pre-kill saves
    // (batches 3 and 6, embedded in the batch-9 checkpoint); none of the
    // post-resume saves succeed, so the count must not grow past that.
    EXPECT_EQ(resumed.result.log.checkpoint_saves, 2);
    EXPECT_EQ(resumed.evolution_bytes, golden.evolution_bytes);
    ASSERT_EQ(resumed.params.size(), golden.params.size());
    EXPECT_EQ(0, std::memcmp(resumed.params.data(), golden.params.data(),
                             golden.params.size() * sizeof(float)));
  }
  ASSERT_TRUE(util::ReadFileToString(ckpt, &after_faults).ok());
  EXPECT_EQ(after_faults, good_checkpoint);
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace cpdg
