// int8 quantized inference suite (tensor/quant.h, DESIGN.md §14):
// quantize/round-trip bounds and packed-layout structure, bitwise parity
// across the scalar / AVX2 / AVX-VNNI backends and across thread counts,
// the MatMul frozen-weight hook, and engine-level fp32-vs-int8 accuracy
// (cosine + link-score agreement) including under live advance churn.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dgnn/encoder.h"
#include "graph/temporal_graph.h"
#include "obs/metrics.h"
#include "serve/serving_engine.h"
#include "tensor/checkpoint_container.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "tensor/serialization.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "train/checkpoint.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cpdg {
namespace {

namespace ts = cpdg::tensor;

struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) {
    util::ThreadPool::SetGlobalNumThreads(n);
  }
  ~ThreadCountGuard() {
    util::ThreadPool::SetGlobalNumThreads(
        util::ThreadPool::DefaultNumThreads());
  }
};

struct SimdModeGuard {
  explicit SimdModeGuard(ts::simd::Mode m) { ts::simd::ForceModeForTest(m); }
  ~SimdModeGuard() { ts::simd::ResetModeForTest(); }
};

/// Pins AvxVnniSupported() == false for the scope so the AVX2 int16
/// backend runs even on VNNI hardware.
struct VnniDisableGuard {
  VnniDisableGuard() { ts::simd::DisableAvxVnniForTest(true); }
  ~VnniDisableGuard() { ts::simd::DisableAvxVnniForTest(false); }
};

std::vector<float> RandomVec(int64_t n, Rng* rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng->NextUniform(-1.0, 1.0));
  return v;
}

double Cosine(const float* a, const float* b, int64_t n) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return na == nb ? 1.0 : 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

TEST(QuantizeTest, RoundTripBoundAndGridRange) {
  Rng rng(101);
  const int64_t rows = 7, cols = 33;
  std::vector<float> src = RandomVec(rows * cols, &rng);
  src[5] = 0.0f;  // exercise exact-zero elements alongside a zero row
  ts::QuantizedMatrix q = ts::QuantizeRowsInt8(src.data(), rows, cols);
  ASSERT_EQ(q.rows, rows);
  ASSERT_EQ(q.cols, cols);
  ASSERT_EQ(q.values.size(), static_cast<size_t>(rows * cols));
  ASSERT_EQ(q.scales.size(), static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float s = q.scales[static_cast<size_t>(r)];
    ASSERT_GT(s, 0.0f);
    for (int64_t c = 0; c < cols; ++c) {
      const int8_t v = q.values[static_cast<size_t>(r * cols + c)];
      EXPECT_GE(v, -127);
      EXPECT_LE(v, 127);
      // Symmetric round-to-nearest: reconstruction error is at most half
      // a quantization step.
      const float err =
          std::fabs(src[static_cast<size_t>(r * cols + c)] - v * s);
      EXPECT_LE(err, s * 0.5f + 1e-7f);
    }
  }
}

TEST(QuantizeTest, ZeroRowHasZeroScaleAndZeroCodes) {
  const int64_t rows = 3, cols = 9;
  std::vector<float> src(static_cast<size_t>(rows * cols), 0.0f);
  src[0] = 0.5f;  // row 0 non-zero; rows 1 and 2 all-zero
  ts::QuantizedMatrix q = ts::QuantizeRowsInt8(src.data(), rows, cols);
  EXPECT_GT(q.scales[0], 0.0f);
  for (int64_t r = 1; r < rows; ++r) {
    EXPECT_EQ(q.scales[static_cast<size_t>(r)], 0.0f);
    for (int64_t c = 0; c < cols; ++c) {
      EXPECT_EQ(q.values[static_cast<size_t>(r * cols + c)], 0);
    }
  }
}

TEST(QuantizeTest, WidePackedAndBiasMirrorValues) {
  Rng rng(77);
  const int64_t rows = 19, cols = 13;  // odd on purpose: padding in play
  std::vector<float> src = RandomVec(rows * cols, &rng);
  ts::QuantizedMatrix q = ts::QuantizeRowsInt8(src.data(), rows, cols);
  ASSERT_EQ(q.kpad, (cols + 3) & ~int64_t{3});
  ASSERT_EQ(q.wide.size(), q.values.size());
  for (size_t i = 0; i < q.values.size(); ++i) {
    EXPECT_EQ(static_cast<int16_t>(q.values[i]), q.wide[i]);
  }
  const int64_t nblk = (rows + 7) / 8;
  ASSERT_EQ(q.packed.size(), static_cast<size_t>(nblk * q.kpad * 8));
  ASSERT_EQ(q.bias.size(), static_cast<size_t>(rows));
  // Every packed byte either mirrors its source element (per the indexing
  // documented on QuantizedMatrix::packed) or is padding and must be zero.
  for (int64_t jb = 0; jb < nblk; ++jb) {
    for (int64_t kb = 0; kb < q.kpad / 4; ++kb) {
      for (int64_t l = 0; l < 8; ++l) {
        for (int64_t t = 0; t < 4; ++t) {
          const int8_t b =
              q.packed[static_cast<size_t>(jb * q.kpad * 8 + kb * 32 +
                                           l * 4 + t)];
          const int64_t r = jb * 8 + l, c = kb * 4 + t;
          if (r < rows && c < cols) {
            EXPECT_EQ(b, q.values[static_cast<size_t>(r * cols + c)]);
          } else {
            EXPECT_EQ(b, 0);
          }
        }
      }
    }
  }
  for (int64_t r = 0; r < rows; ++r) {
    int32_t sum = 0;
    for (int64_t c = 0; c < cols; ++c) {
      sum += q.values[static_cast<size_t>(r * cols + c)];
    }
    EXPECT_EQ(q.bias[static_cast<size_t>(r)], 128 * sum);
  }
}

TEST(QuantizeTest, TransposeQuantMatchesQuantOfTranspose) {
  Rng rng(5);
  const int64_t rows = 11, cols = 6;
  std::vector<float> src = RandomVec(rows * cols, &rng);
  std::vector<float> t(static_cast<size_t>(rows * cols));
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      t[static_cast<size_t>(c * rows + r)] =
          src[static_cast<size_t>(r * cols + c)];
    }
  }
  ts::QuantizedMatrix a = ts::QuantizeTransposeInt8(src.data(), rows, cols);
  ts::QuantizedMatrix b = ts::QuantizeRowsInt8(t.data(), cols, rows);
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.cols, b.cols);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.scales, b.scales);
  EXPECT_EQ(a.packed, b.packed);
  EXPECT_EQ(a.bias, b.bias);
}

std::vector<float> QuantGemmAt(ts::simd::Mode mode, bool vnni,
                               const std::vector<float>& a,
                               const ts::QuantizedMatrix& bt, int64_t m,
                               int64_t k, int64_t n) {
  SimdModeGuard guard(mode);
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  if (vnni) {
    ts::QuantGemmTransposedB(a.data(), m, k, bt, c.data());
  } else {
    VnniDisableGuard off;
    ts::QuantGemmTransposedB(a.data(), m, k, bt, c.data());
  }
  return c;
}

TEST(QuantGemmTest, BackendsAreBitwiseIdentical) {
  Rng rng(31);
  const struct {
    int64_t m, k, n;
  } shapes[] = {{1, 5, 1},   {3, 32, 9},  {7, 63, 32},
                {8, 8, 8},   {64, 128, 100}, {5, 1, 3}};
  for (const auto& s : shapes) {
    std::vector<float> a = RandomVec(s.m * s.k, &rng);
    std::vector<float> b = RandomVec(s.k * s.n, &rng);
    ts::QuantizedMatrix bt = ts::QuantizeTransposeInt8(b.data(), s.k, s.n);
    std::vector<float> scalar =
        QuantGemmAt(ts::simd::Mode::kScalar, false, a, bt, s.m, s.k, s.n);
    if (ts::simd::Avx2Supported()) {
      std::vector<float> avx2 =
          QuantGemmAt(ts::simd::Mode::kAvx2, false, a, bt, s.m, s.k, s.n);
      EXPECT_EQ(0, std::memcmp(scalar.data(), avx2.data(),
                               scalar.size() * sizeof(float)))
          << "scalar vs avx2 at m=" << s.m << " k=" << s.k << " n=" << s.n;
      if (ts::simd::AvxVnniSupported()) {
        std::vector<float> vnni =
            QuantGemmAt(ts::simd::Mode::kAvx2, true, a, bt, s.m, s.k, s.n);
        EXPECT_EQ(0, std::memcmp(scalar.data(), vnni.data(),
                                 scalar.size() * sizeof(float)))
            << "scalar vs vnni at m=" << s.m << " k=" << s.k
            << " n=" << s.n;
      }
    }
  }
}

TEST(QuantGemmTest, ThreadCountDoesNotChangeBits) {
  Rng rng(13);
  // Big enough that 2*m*k*n clears kGemmParallelMinFlops and the driver
  // fans strips out to the pool.
  const int64_t m = 64, k = 128, n = 128;
  ASSERT_GE(2 * m * k * n, ts::kGemmParallelMinFlops);
  std::vector<float> a = RandomVec(m * k, &rng);
  std::vector<float> b = RandomVec(k * n, &rng);
  ts::QuantizedMatrix bt = ts::QuantizeTransposeInt8(b.data(), k, n);
  std::vector<float> c1(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> c4(static_cast<size_t>(m * n), 0.0f);
  {
    ThreadCountGuard threads(1);
    ts::QuantGemmTransposedB(a.data(), m, k, bt, c1.data());
  }
  {
    ThreadCountGuard threads(4);
    ts::QuantGemmTransposedB(a.data(), m, k, bt, c4.data());
  }
  EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)));
}

TEST(QuantGemmTest, AccumulatesIntoExistingOutput) {
  Rng rng(3);
  const int64_t m = 2, k = 8, n = 3;
  std::vector<float> a = RandomVec(m * k, &rng);
  std::vector<float> b = RandomVec(k * n, &rng);
  ts::QuantizedMatrix bt = ts::QuantizeTransposeInt8(b.data(), k, n);
  std::vector<float> zero(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> seeded(static_cast<size_t>(m * n), 2.5f);
  ts::QuantGemmTransposedB(a.data(), m, k, bt, zero.data());
  ts::QuantGemmTransposedB(a.data(), m, k, bt, seeded.data());
  for (size_t i = 0; i < zero.size(); ++i) {
    EXPECT_FLOAT_EQ(seeded[i], zero[i] + 2.5f);
  }
}

TEST(QuantGemmTest, TracksFp32ProductClosely) {
  Rng rng(909);
  const int64_t m = 16, k = 96, n = 48;
  std::vector<float> a = RandomVec(m * k, &rng);
  std::vector<float> b = RandomVec(k * n, &rng);
  ts::QuantizedMatrix bt = ts::QuantizeTransposeInt8(b.data(), k, n);
  std::vector<float> cq(static_cast<size_t>(m * n), 0.0f);
  ts::QuantGemmTransposedB(a.data(), m, k, bt, cq.data());
  std::vector<float> cf(static_cast<size_t>(m * n), 0.0f);
  ts::GemmAccumulate({a.data(), m, k, k, 1}, {b.data(), k, n, n, 1},
                     cf.data());
  for (int64_t i = 0; i < m; ++i) {
    EXPECT_GT(Cosine(cq.data() + i * n, cf.data() + i * n, n), 0.999);
  }
}

TEST(QuantModeTest, MatMulHookRoutesFrozenWeightOnly) {
  Rng rng(55);
  ts::Tensor a = ts::Tensor::RandomUniform(6, 32, 1.0f, &rng);
  ts::Tensor w = ts::Tensor::RandomUniform(32, 16, 1.0f, &rng);
  ts::QuantizedParamSet set;
  set.AddWeight(w.data(), w.rows(), w.cols());
  EXPECT_EQ(set.weight_count(), 1);
  EXPECT_GT(set.quantized_bytes(), 0);

  obs::Counter& int8_calls =
      obs::MetricsRegistry::Global().counter("tensor.matmul.int8_calls");
  ts::InferenceModeGuard inference;
  ts::Tensor fp32 = ts::MatMul(a, w);

  const int64_t before = int8_calls.value();
  ts::Tensor quant = [&] {
    ts::QuantModeGuard quant_mode(&set);
    EXPECT_TRUE(ts::QuantModeEnabled());
    EXPECT_EQ(ts::ActiveQuantizedWeight(w.data()), set.Find(w.data()));
    EXPECT_EQ(ts::ActiveQuantizedWeight(a.data()), nullptr);
    return ts::MatMul(a, w);
  }();
  EXPECT_EQ(int8_calls.value(), before + 1);
  EXPECT_FALSE(ts::QuantModeEnabled());
  EXPECT_EQ(ts::ActiveQuantizedWeight(w.data()), nullptr);

  // The quantized answer is approximate but close; outside the guard the
  // very same product is exact fp32 again.
  for (int64_t i = 0; i < quant.rows(); ++i) {
    EXPECT_GT(Cosine(quant.data() + i * quant.cols(),
                     fp32.data() + i * fp32.cols(), quant.cols()),
              0.999);
  }
  ts::Tensor fp32_again = ts::MatMul(a, w);
  EXPECT_EQ(0, std::memcmp(fp32.data(), fp32_again.data(),
                           static_cast<size_t>(fp32.size()) * sizeof(float)));
  EXPECT_EQ(int8_calls.value(), before + 1);
}

TEST(QuantModeTest, NullGuardForcesFp32Scope) {
  Rng rng(56);
  ts::Tensor a = ts::Tensor::RandomUniform(3, 8, 1.0f, &rng);
  ts::Tensor w = ts::Tensor::RandomUniform(8, 4, 1.0f, &rng);
  ts::QuantizedParamSet set;
  set.AddWeight(w.data(), w.rows(), w.cols());
  ts::InferenceModeGuard inference;
  ts::Tensor fp32 = ts::MatMul(a, w);
  ts::QuantModeGuard outer(&set);
  {
    ts::QuantModeGuard escape(nullptr);
    EXPECT_FALSE(ts::QuantModeEnabled());
    ts::Tensor inner = ts::MatMul(a, w);
    EXPECT_EQ(0,
              std::memcmp(fp32.data(), inner.data(),
                          static_cast<size_t>(fp32.size()) * sizeof(float)));
  }
  EXPECT_TRUE(ts::QuantModeEnabled());  // nesting restored the outer set
}

// ---------------------------------------------------------------------------
// Engine-level: fp32 vs int8 over the same checkpoint.

constexpr int64_t kNumNodes = 40;
constexpr int64_t kPredictorHidden = 32;

dgnn::EncoderConfig EngineConfig() {
  dgnn::EncoderConfig config;
  config.num_nodes = kNumNodes;
  // Wide enough that every frozen weight clears the engine's
  // rows >= 2 quantization floor and the kernels run real tiles.
  config.memory_dim = 32;
  config.embed_dim = 32;
  config.time_dim = 8;
  config.num_neighbors = 5;
  return config;
}

std::vector<graph::Event> MakeEvents(uint64_t seed, size_t count,
                                     double t0) {
  Rng rng(seed);
  std::vector<graph::Event> events;
  events.reserve(count);
  double t = t0;
  for (size_t i = 0; i < count; ++i) {
    graph::Event e;
    e.src = static_cast<graph::NodeId>(rng.NextBounded(kNumNodes));
    e.dst = static_cast<graph::NodeId>(rng.NextBounded(kNumNodes));
    if (e.dst == e.src) e.dst = (e.src + 1) % kNumNodes;
    t += rng.NextUniform(0.1, 2.0);
    e.time = t;
    events.push_back(e);
  }
  return events;
}

/// Warm reference model + checkpoint, mirroring the serving_test fixture
/// but sized for the quantized kernels.
struct EngineFixture {
  graph::TemporalGraph graph;
  Rng rng{42};
  std::unique_ptr<dgnn::DgnnEncoder> encoder;
  std::unique_ptr<dgnn::LinkPredictor> predictor;
  std::string checkpoint_path;

  explicit EngineFixture(const std::string& name) {
    graph = graph::TemporalGraph::Create(kNumNodes, MakeEvents(7, 160, 0.0))
                .ValueOrDie();
    encoder =
        std::make_unique<dgnn::DgnnEncoder>(EngineConfig(), &graph, &rng);
    predictor = std::make_unique<dgnn::LinkPredictor>(
        EngineConfig().embed_dim, kPredictorHidden, &rng);
    {
      ts::InferenceModeGuard guard;
      encoder->ReplayEvents(graph.events(), /*batch_size=*/16);
    }
    checkpoint_path = ::testing::TempDir() + "quant_" + name + ".ckpt";
    std::vector<ts::Tensor> params = encoder->Parameters();
    std::vector<ts::Tensor> dec = predictor->Parameters();
    params.insert(params.end(), dec.begin(), dec.end());
    ts::SectionWriter writer;
    writer.Add(ts::kParamsSection,
               ts::EncodeTensorList(params).ValueOrDie());
    std::string memory_bytes;
    encoder->memory().SerializeTo(&memory_bytes);
    writer.Add(train::kMemorySection, memory_bytes);
    EXPECT_TRUE(writer.WriteAtomic(checkpoint_path).ok());
  }

  std::unique_ptr<serve::ServingEngine> MakeEngine(
      serve::ServePrecision precision) const {
    serve::ServingOptions options;
    options.precision = precision;
    options.cache_capacity = 0;  // cache off: every embed runs the kernels
    auto engine = serve::ServingEngine::FromCheckpoint(
        EngineConfig(), kPredictorHidden, &graph, checkpoint_path, options);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return std::move(engine.value());
  }
};

std::vector<graph::NodeId> AllNodes() {
  std::vector<graph::NodeId> nodes(kNumNodes);
  for (int64_t i = 0; i < kNumNodes; ++i) {
    nodes[static_cast<size_t>(i)] = static_cast<graph::NodeId>(i);
  }
  return nodes;
}

void ExpectEnginesAgree(serve::ServingEngine* fp32,
                        serve::ServingEngine* int8, double min_cosine) {
  const std::vector<graph::NodeId> nodes = AllNodes();
  const double t = 1000.0;
  ts::Tensor a = fp32->Embed(nodes, t).ValueOrDie();
  ts::Tensor b = int8->Embed(nodes, t).ValueOrDie();
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    EXPECT_GT(Cosine(a.data() + i * a.cols(), b.data() + i * b.cols(),
                     a.cols()),
              min_cosine)
        << "node " << nodes[static_cast<size_t>(i)];
  }
  // Link scores must rank the same way they do in fp32 to a loose absolute
  // tolerance — this is the quantity the AUC gate in bench_serving holds.
  std::vector<graph::NodeId> srcs(nodes.begin(), nodes.begin() + 10);
  std::vector<graph::NodeId> dsts(nodes.begin() + 10, nodes.begin() + 20);
  std::vector<double> sa = fp32->ScoreLinks(srcs, dsts, t).ValueOrDie();
  std::vector<double> sb = int8->ScoreLinks(srcs, dsts, t).ValueOrDie();
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_NEAR(sa[i], sb[i], 0.05);
  }
}

TEST(QuantServingTest, Int8EngineTracksFp32AcrossThreadCounts) {
  EngineFixture fixture("accuracy");
  auto fp32 = fixture.MakeEngine(serve::ServePrecision::kFp32);
  auto int8 = fixture.MakeEngine(serve::ServePrecision::kInt8);
  obs::Counter& int8_calls =
      obs::MetricsRegistry::Global().counter("tensor.matmul.int8_calls");
  const int64_t before = int8_calls.value();
  {
    ThreadCountGuard threads(1);
    ExpectEnginesAgree(fp32.get(), int8.get(), 0.99);
  }
  {
    ThreadCountGuard threads(4);
    ExpectEnginesAgree(fp32.get(), int8.get(), 0.99);
  }
  // The int8 engine actually took the quantized path (and the fp32 engine
  // alone would not have moved the counter).
  EXPECT_GT(int8_calls.value(), before);
  fp32->Shutdown();
  int8->Shutdown();
}

TEST(QuantServingTest, Int8EmbedsAreBitDeterministicAcrossThreadCounts) {
  EngineFixture fixture("determinism");
  auto engine = fixture.MakeEngine(serve::ServePrecision::kInt8);
  const std::vector<graph::NodeId> nodes = AllNodes();
  ts::Tensor one, four;
  {
    ThreadCountGuard threads(1);
    one = engine->Embed(nodes, 500.0).ValueOrDie();
  }
  {
    ThreadCountGuard threads(4);
    four = engine->Embed(nodes, 500.0).ValueOrDie();
  }
  EXPECT_EQ(0, std::memcmp(one.data(), four.data(),
                           static_cast<size_t>(one.size()) * sizeof(float)));
  engine->Shutdown();
}

TEST(QuantServingTest, PrecisionParsing) {
  EXPECT_EQ(serve::ParseServePrecision("fp32").ValueOrDie(),
            serve::ServePrecision::kFp32);
  EXPECT_EQ(serve::ParseServePrecision("int8").ValueOrDie(),
            serve::ServePrecision::kInt8);
  EXPECT_FALSE(serve::ParseServePrecision("int4").ok());
  EXPECT_STREQ(serve::ServePrecisionName(serve::ServePrecision::kFp32),
               "fp32");
  EXPECT_STREQ(serve::ServePrecisionName(serve::ServePrecision::kInt8),
               "int8");
}

TEST(QuantServingTest, LiveFeedAdvanceRacesInt8Queries) {
  EngineFixture fixture("livefeed");
  auto engine = fixture.MakeEngine(serve::ServePrecision::kInt8);
  const int64_t version_before = engine->memory_version();

  std::atomic<bool> stop{false};
  std::atomic<bool> feeder_ok{true};
  std::thread feeder([&] {
    double t = 10000.0;
    for (int batch = 0; batch < 8 && !stop.load(); ++batch) {
      std::vector<graph::Event> events =
          MakeEvents(0x900d + static_cast<uint64_t>(batch), 12, t);
      t = events.back().time + 1.0;
      if (!engine->Advance(events).ok()) {
        feeder_ok.store(false);
        return;
      }
    }
  });

  // Queries race the feeder; every one must succeed (fresh recompute after
  // each invalidation), and the engine must still answer coherently after
  // the churn settles.
  const std::vector<graph::NodeId> nodes = AllNodes();
  for (int i = 0; i < 30; ++i) {
    auto result = engine->Embed(nodes, 50000.0);
    ASSERT_TRUE(result.ok()) << result.status().message();
    ASSERT_EQ(result.ValueOrDie().rows(),
              static_cast<int64_t>(nodes.size()));
  }
  stop.store(true);
  feeder.join();
  EXPECT_TRUE(feeder_ok.load());
  EXPECT_GT(engine->memory_version(), version_before);

  // Post-churn embeds are reproducible: same query twice, same bits.
  ts::Tensor a = engine->Embed(nodes, 60000.0).ValueOrDie();
  ts::Tensor b = engine->Embed(nodes, 60000.0).ValueOrDie();
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<size_t>(a.size()) * sizeof(float)));
  engine->Shutdown();
}

}  // namespace
}  // namespace cpdg
