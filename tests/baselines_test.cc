#include <gtest/gtest.h>

#include "graph/temporal_graph.h"
#include "ssl/ssl_baselines.h"
#include "static_gnn/static_gnn.h"
#include "tensor/ops.h"

namespace cpdg {
namespace {

using graph::Event;
using graph::NodeId;
using graph::TemporalGraph;

TemporalGraph MakeBipartiteGraph(uint64_t seed, int64_t events_count = 400) {
  Rng rng(seed);
  std::vector<Event> events;
  for (int64_t i = 0; i < events_count; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(12));
    // Two user communities preferring disjoint item halves.
    NodeId b = (a < 6) ? 12 + static_cast<NodeId>(rng.NextBounded(6))
                       : 18 + static_cast<NodeId>(rng.NextBounded(6));
    events.push_back({a, b, static_cast<double>(i) * 0.002});
  }
  return TemporalGraph::Create(24, events).ValueOrDie();
}

class StaticEncoderTest
    : public ::testing::TestWithParam<static_gnn::StaticGnnType> {};

TEST_P(StaticEncoderTest, EmbeddingShapes) {
  TemporalGraph g = MakeBipartiteGraph(1);
  auto snap = graph::StaticSnapshot::FromTemporalGraph(
      g, std::numeric_limits<double>::infinity());
  Rng rng(2);
  static_gnn::StaticGnnEncoder::Config config;
  config.type = GetParam();
  config.num_nodes = g.num_nodes();
  config.feature_dim = 8;
  config.hidden_dim = 8;
  config.embed_dim = 8;
  config.num_neighbors = 3;
  static_gnn::StaticGnnEncoder encoder(config, &rng);
  encoder.AttachSnapshot(&snap);
  tensor::Tensor z = encoder.ComputeEmbeddings({0, 5, 13}, &rng);
  EXPECT_EQ(z.rows(), 3);
  EXPECT_EQ(z.cols(), 8);
  EXPECT_TRUE(z.requires_grad());
}

TEST_P(StaticEncoderTest, LinkPredictionTrainingReducesLoss) {
  TemporalGraph g = MakeBipartiteGraph(3);
  auto snap = graph::StaticSnapshot::FromTemporalGraph(
      g, std::numeric_limits<double>::infinity());
  Rng rng(4);
  static_gnn::StaticGnnEncoder::Config config;
  config.type = GetParam();
  config.num_nodes = g.num_nodes();
  config.feature_dim = 8;
  config.hidden_dim = 8;
  config.embed_dim = 8;
  config.num_neighbors = 3;
  static_gnn::StaticGnnEncoder encoder(config, &rng);
  encoder.AttachSnapshot(&snap);
  tensor::Mlp decoder({16, 8, 1}, &rng);
  static_gnn::StaticTrainOptions opts;
  opts.steps = 120;
  opts.batch_size = 64;
  double final_loss = static_gnn::TrainLinkPredictionStatic(
      &encoder, &decoder, g.events(), opts, &rng);
  EXPECT_LT(final_loss, 0.68);  // below ln(2): better than chance
}

INSTANTIATE_TEST_SUITE_P(
    AllStaticTypes, StaticEncoderTest,
    ::testing::Values(static_gnn::StaticGnnType::kGraphSage,
                      static_gnn::StaticGnnType::kGat,
                      static_gnn::StaticGnnType::kGin),
    [](const auto& info) {
      return static_gnn::StaticGnnTypeName(info.param);
    });

TEST(DgiTest, TrainingRunsAndReducesLoss) {
  TemporalGraph g = MakeBipartiteGraph(5);
  auto snap = graph::StaticSnapshot::FromTemporalGraph(
      g, std::numeric_limits<double>::infinity());
  Rng rng(6);
  static_gnn::StaticGnnEncoder::Config config;
  config.num_nodes = g.num_nodes();
  config.feature_dim = 8;
  config.hidden_dim = 8;
  config.embed_dim = 8;
  config.num_neighbors = 3;
  static_gnn::StaticGnnEncoder encoder(config, &rng);
  encoder.AttachSnapshot(&snap);
  auto nodes = g.NodesBefore(std::numeric_limits<double>::infinity());
  static_gnn::StaticTrainOptions opts;
  opts.steps = 80;
  double final_loss = static_gnn::TrainDgi(&encoder, nodes, opts, &rng);
  EXPECT_GT(final_loss, 0.0);
  EXPECT_LT(final_loss, 1.0);
}

TEST(GptGnnTest, TrainingRuns) {
  TemporalGraph g = MakeBipartiteGraph(7);
  auto snap = graph::StaticSnapshot::FromTemporalGraph(
      g, std::numeric_limits<double>::infinity());
  Rng rng(8);
  static_gnn::StaticGnnEncoder::Config config;
  config.num_nodes = g.num_nodes();
  config.feature_dim = 8;
  config.hidden_dim = 8;
  config.embed_dim = 8;
  config.num_neighbors = 3;
  static_gnn::StaticGnnEncoder encoder(config, &rng);
  encoder.AttachSnapshot(&snap);
  static_gnn::StaticTrainOptions opts;
  opts.steps = 60;
  double final_loss =
      static_gnn::TrainGptGnn(&encoder, g.events(), opts, &rng);
  EXPECT_GT(final_loss, 0.0);
}

dgnn::EncoderConfig SmallDgnnConfig(int64_t num_nodes) {
  dgnn::EncoderConfig c =
      dgnn::EncoderConfig::Preset(dgnn::EncoderType::kTgn, num_nodes);
  c.memory_dim = 8;
  c.embed_dim = 8;
  c.time_dim = 4;
  c.num_neighbors = 3;
  return c;
}

TEST(DdgclTest, PretrainingRunsAndUpdatesMemory) {
  TemporalGraph g = MakeBipartiteGraph(9, 600);
  Rng rng(10);
  dgnn::DgnnEncoder encoder(SmallDgnnConfig(g.num_nodes()), &g, &rng);
  ssl::SslTrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 60;
  opts.view_window = 0.2;
  dgnn::TrainLog log = ssl::PretrainDdgcl(&encoder, g, opts, &rng);
  EXPECT_EQ(log.epoch_losses.size(), 2u);
  EXPECT_GT(encoder.memory().StateNorm(), 0.0);
}

TEST(SelfRgnnTest, PretrainingRunsAndUpdatesMemory) {
  TemporalGraph g = MakeBipartiteGraph(11, 600);
  Rng rng(12);
  dgnn::DgnnEncoder encoder(SmallDgnnConfig(g.num_nodes()), &g, &rng);
  ssl::SslTrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 60;
  dgnn::TrainLog log = ssl::PretrainSelfRgnn(&encoder, g, opts, &rng);
  EXPECT_EQ(log.epoch_losses.size(), 2u);
  EXPECT_GT(encoder.memory().StateNorm(), 0.0);
}

}  // namespace
}  // namespace cpdg
