// Corruption fuzzing of the checkpoint formats: v2 container roundtrips,
// legacy v1 compatibility, truncation at every byte boundary, single-byte
// flips over the whole file, hostile headers that must be rejected before
// any allocation, and the all-or-nothing restore contracts of parameters,
// optimizer state, memory and evolution checkpoints.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/evolution.h"
#include "dgnn/memory.h"
#include "tensor/checkpoint_container.h"
#include "tensor/nn.h"
#include "tensor/optim.h"
#include "tensor/ops.h"
#include "tensor/serialization.h"
#include "tensor/tensor.h"
#include "util/atomic_file.h"
#include "util/byte_codec.h"
#include "util/rng.h"

namespace cpdg {
namespace {

namespace ts = cpdg::tensor;

void WriteRawFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::vector<ts::Tensor> SampleTensors() {
  return {ts::Tensor::FromVector(2, 3, {1.f, 2.f, 3.f, 4.f, 5.f, 6.f}),
          ts::Tensor::FromVector(1, 4, {-1.f, 0.f, 0.5f, 9.f})};
}

void ExpectTensorsEqual(const std::vector<ts::Tensor>& a,
                        const std::vector<ts::Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].rows(), b[i].rows()) << "tensor " << i;
    ASSERT_EQ(a[i].cols(), b[i].cols()) << "tensor " << i;
    EXPECT_EQ(0, std::memcmp(a[i].data(), b[i].data(),
                             static_cast<size_t>(a[i].size()) *
                                 sizeof(float)))
        << "tensor " << i;
  }
}

/// Hand-builds a legacy v1 checkpoint file (raw tensor list, no container,
/// no checksums) — the format written before the v2 refactor.
std::string BuildV1Bytes(const std::vector<ts::Tensor>& tensors) {
  std::string bytes;
  util::ByteWriter w(&bytes);
  bytes.append(ts::kCheckpointMagic, sizeof(ts::kCheckpointMagic));
  w.Pod(ts::kCheckpointVersionV1);
  w.Pod(static_cast<uint32_t>(tensors.size()));
  for (const ts::Tensor& t : tensors) {
    w.Pod(static_cast<int64_t>(t.rows()));
    w.Pod(static_cast<int64_t>(t.cols()));
    bytes.append(reinterpret_cast<const char*>(t.data()),
                 static_cast<size_t>(t.size()) * sizeof(float));
  }
  return bytes;
}

TEST(CheckpointContainerTest, RoundTripsSections) {
  ts::SectionWriter writer;
  writer.Add("alpha", "payload-a");
  writer.Add("beta", std::string("\x00\x01\x02", 3));
  writer.Add("empty", "");
  Result<ts::SectionReader> reader =
      ts::SectionReader::FromBytes(writer.Finish(), "test");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader.value().Has("alpha"));
  EXPECT_FALSE(reader.value().Has("gamma"));
  ASSERT_TRUE(reader.value().Find("alpha").ok());
  EXPECT_EQ(reader.value().Find("alpha").value(), "payload-a");
  EXPECT_EQ(reader.value().Find("beta").value(), std::string("\x00\x01\x02", 3));
  EXPECT_EQ(reader.value().Find("empty").value(), "");
  EXPECT_EQ(reader.value().Find("gamma").status().code(),
            StatusCode::kNotFound);
  ASSERT_EQ(reader.value().section_names().size(), 3u);
}

TEST(CheckpointContainerTest, TruncationAtEveryBoundaryFailsCleanly) {
  ts::SectionWriter writer;
  writer.Add("params", "0123456789abcdef");
  writer.Add("aux", "xy");
  const std::string full = writer.Finish();
  for (size_t len = 0; len < full.size(); ++len) {
    Result<ts::SectionReader> reader =
        ts::SectionReader::FromBytes(full.substr(0, len), "trunc");
    EXPECT_FALSE(reader.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument)
        << "prefix length " << len;
  }
  // The untruncated container still parses.
  ASSERT_TRUE(ts::SectionReader::FromBytes(full, "full").ok());
}

TEST(CheckpointContainerTest, EveryByteFlipIsDetected) {
  ts::SectionWriter writer;
  writer.Add("params", "0123456789abcdef");
  const std::string full = writer.Finish();
  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::string corrupt = full;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0xFF);
    Result<ts::SectionReader> reader =
        ts::SectionReader::FromBytes(corrupt, "flip");
    if (!reader.ok()) continue;  // structural damage or CRC, caught at parse
    // The CRC covers the payload, not the section name, so a name-byte
    // flip parses — but the section must then be unfindable by its real
    // name, so every consumer still sees a clean error.
    EXPECT_EQ(reader.value().Find("params").status().code(),
              StatusCode::kNotFound)
        << "flip at byte " << pos << " went undetected";
  }
}

TEST(SerializationTest, V2RoundTrip) {
  const std::string path = ::testing::TempDir() + "ckpt_v2.ckpt";
  std::vector<ts::Tensor> tensors = SampleTensors();
  ASSERT_TRUE(ts::SaveTensors(tensors, path).ok());
  Result<std::vector<ts::Tensor>> loaded = ts::LoadTensors(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTensorsEqual(tensors, loaded.value());
  std::remove(path.c_str());
}

TEST(SerializationTest, V1LegacyFilesStillLoad) {
  const std::string path = ::testing::TempDir() + "ckpt_v1.ckpt";
  std::vector<ts::Tensor> tensors = SampleTensors();
  WriteRawFile(path, BuildV1Bytes(tensors));
  Result<std::vector<ts::Tensor>> loaded = ts::LoadTensors(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTensorsEqual(tensors, loaded.value());
  std::remove(path.c_str());
}

TEST(SerializationTest, V1TrailingGarbageIsRejected) {
  const std::string path = ::testing::TempDir() + "ckpt_v1_trail.ckpt";
  std::string bytes = BuildV1Bytes(SampleTensors());
  bytes += "extra";
  WriteRawFile(path, bytes);
  Result<std::vector<ts::Tensor>> loaded = ts::LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, HostileShapeHeaderRejectedBeforeAllocation) {
  // A v1 file claiming a ~4-exabyte tensor in a 40-byte payload: the
  // loader must bound rows*cols against the remaining file size (and the
  // overflow guard) before any allocation happens.
  const std::string path = ::testing::TempDir() + "ckpt_hostile.ckpt";
  std::string bytes;
  util::ByteWriter w(&bytes);
  bytes.append(ts::kCheckpointMagic, sizeof(ts::kCheckpointMagic));
  w.Pod(ts::kCheckpointVersionV1);
  w.Pod(static_cast<uint32_t>(1));
  w.Pod(static_cast<int64_t>(int64_t{1} << 31));
  w.Pod(static_cast<int64_t>(int64_t{1} << 31));
  bytes.append(16, '\0');
  WriteRawFile(path, bytes);
  Result<std::vector<ts::Tensor>> loaded = ts::LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);

  // Same attack through the v2 section payload.
  std::string payload;
  util::ByteWriter pw(&payload);
  pw.Pod(static_cast<uint32_t>(1));
  pw.Pod(static_cast<int64_t>(int64_t{1} << 62));
  pw.Pod(static_cast<int64_t>(int64_t{1} << 62));
  ts::SectionWriter writer;
  writer.Add(ts::kParamsSection, payload);
  ASSERT_TRUE(writer.WriteAtomic(path).ok());
  loaded = ts::LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, FileTruncationAndBitflipSweep) {
  const std::string path = ::testing::TempDir() + "ckpt_fuzz.ckpt";
  ASSERT_TRUE(ts::SaveTensors(SampleTensors(), path).ok());
  std::string full;
  ASSERT_TRUE(util::ReadFileToString(path, &full).ok());

  for (size_t len = 0; len < full.size(); ++len) {
    WriteRawFile(path, full.substr(0, len));
    Result<std::vector<ts::Tensor>> loaded = ts::LoadTensors(path);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
  }
  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::string corrupt = full;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0xFF);
    WriteRawFile(path, corrupt);
    Result<std::vector<ts::Tensor>> loaded = ts::LoadTensors(path);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << pos << " loaded";
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadParametersIsAllOrNothingAcrossShapeMismatch) {
  const std::string path = ::testing::TempDir() + "ckpt_mismatch.ckpt";
  Rng rng(3);
  ts::Mlp source({4, 3, 2}, &rng);
  ASSERT_TRUE(ts::SaveParameters(source, path).ok());

  // Architecturally different module: same parameter count pattern is
  // impossible, so the load must fail and leave every tensor untouched.
  ts::Mlp target({5, 3, 2}, &rng);
  std::vector<std::vector<float>> before;
  for (const ts::Tensor& t : target.Parameters()) {
    before.emplace_back(t.data(), t.data() + t.size());
  }
  Status status = ts::LoadParameters(&target, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::vector<ts::Tensor> after = target.Parameters();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(after[i].data(), before[i].data(),
                             before[i].size() * sizeof(float)))
        << "tensor " << i << " mutated by failed load";
  }

  // The matching architecture restores cleanly from the same file.
  ts::Mlp match({4, 3, 2}, &rng);
  ASSERT_TRUE(ts::LoadParameters(&match, path).ok());
  ExpectTensorsEqual(source.Parameters(), match.Parameters());
  std::remove(path.c_str());
}

TEST(OptimizerStateTest, AdamRoundTripIsExact) {
  Rng rng(7);
  std::vector<ts::Tensor> params = {
      ts::Tensor::RandomUniform(3, 2, 0.5f, &rng, /*requires_grad=*/true),
      ts::Tensor::RandomUniform(1, 4, 0.5f, &rng, /*requires_grad=*/true)};
  ts::Adam adam(params, 1e-2f);
  for (int step = 0; step < 3; ++step) {
    adam.ZeroGrad();
    ts::Tensor loss =
        ts::Add(ts::Mean(ts::Mul(params[0], params[0])),
                ts::Mean(ts::Mul(params[1], params[1])));
    loss.Backward();
    adam.Step();
  }
  std::string state;
  adam.SaveState(&state);

  ts::Adam restored(params, 1e-2f);
  ASSERT_TRUE(restored.LoadState(state).ok());
  EXPECT_EQ(restored.step_count(), 3);
  std::string state2;
  restored.SaveState(&state2);
  EXPECT_EQ(state, state2);
}

TEST(OptimizerStateTest, AdamRejectsMismatchedAndCorruptState) {
  Rng rng(9);
  std::vector<ts::Tensor> params = {
      ts::Tensor::RandomUniform(3, 2, 0.5f, &rng, /*requires_grad=*/true)};
  ts::Adam adam(params, 1e-2f);
  adam.ZeroGrad();
  ts::Mean(ts::Mul(params[0], params[0])).Backward();
  adam.Step();
  std::string state;
  adam.SaveState(&state);

  // Different parameter list shape.
  std::vector<ts::Tensor> other = {
      ts::Tensor::RandomUniform(2, 2, 0.5f, &rng, /*requires_grad=*/true)};
  ts::Adam mismatched(other, 1e-2f);
  EXPECT_FALSE(mismatched.LoadState(state).ok());
  EXPECT_EQ(mismatched.step_count(), 0);  // untouched by failed load

  // Truncation and trailing garbage.
  ts::Adam fresh(params, 1e-2f);
  EXPECT_FALSE(fresh.LoadState(
                        std::string_view(state).substr(0, state.size() - 3))
                   .ok());
  EXPECT_FALSE(fresh.LoadState(state + "junk").ok());
  EXPECT_EQ(fresh.step_count(), 0);
  ASSERT_TRUE(fresh.LoadState(state).ok());
}

TEST(MemoryStateTest, RoundTripIncludesPendingMessages) {
  dgnn::Memory memory(5, 3);
  memory.SetStates({1, 3},
                   ts::Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6}));
  memory.SetLastUpdate(1, 0.25);
  memory.EnqueueMessage(1, {4, 0.5});
  memory.EnqueueMessage(1, {2, 0.75});
  memory.EnqueueMessage(4, {1, 0.9});
  std::string bytes;
  memory.SerializeTo(&bytes);

  dgnn::Memory restored(5, 3);
  ASSERT_TRUE(restored.DeserializeFrom(bytes).ok());
  std::string bytes2;
  restored.SerializeTo(&bytes2);
  EXPECT_EQ(bytes, bytes2);
  ASSERT_TRUE(restored.HasPending(1));
  ASSERT_EQ(restored.Pending(1).size(), 2u);
  EXPECT_EQ(restored.Pending(1)[1].other, 2);
  EXPECT_EQ(restored.LastUpdate(1), 0.25);
}

TEST(MemoryStateTest, RejectsDimensionMismatchAndCorruption) {
  dgnn::Memory memory(4, 2);
  std::string bytes;
  memory.SerializeTo(&bytes);

  dgnn::Memory wrong_shape(4, 3);
  EXPECT_EQ(wrong_shape.DeserializeFrom(bytes).code(),
            StatusCode::kFailedPrecondition);

  dgnn::Memory target(4, 2);
  for (size_t len = 0; len < bytes.size(); ++len) {
    Status status = target.DeserializeFrom(bytes.substr(0, len));
    EXPECT_FALSE(status.ok()) << "truncated memory payload of " << len
                              << " bytes accepted";
  }
  EXPECT_FALSE(target.DeserializeFrom(bytes + "x").ok());
}

TEST(EvolutionStateTest, RoundTripAndValidation) {
  dgnn::Memory memory(3, 2);
  memory.SetStates({0, 1, 2},
                   ts::Tensor::FromVector(3, 2, {1, 2, 3, 4, 5, 6}));
  core::EvolutionCheckpoints checkpoints(3, 2);
  checkpoints.Record(memory);
  memory.SetStates({0}, ts::Tensor::FromVector(1, 2, {9, 9}));
  checkpoints.Record(memory);

  std::string bytes;
  checkpoints.SerializeTo(&bytes);
  core::EvolutionCheckpoints restored;
  ASSERT_TRUE(restored.DeserializeFrom(bytes).ok());
  EXPECT_EQ(restored.num_checkpoints(), 2);
  EXPECT_EQ(restored.num_nodes(), 3);
  EXPECT_EQ(restored.dim(), 2);
  EXPECT_EQ(restored.StateAt(1, 0)[0], 9.0f);
  std::string bytes2;
  restored.SerializeTo(&bytes2);
  EXPECT_EQ(bytes, bytes2);

  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(restored.DeserializeFrom(bytes.substr(0, len)).ok())
        << "truncated evolution payload of " << len << " bytes accepted";
  }
  EXPECT_FALSE(restored.DeserializeFrom(bytes + "y").ok());
  // Validation failures must not clobber the previously restored contents.
  EXPECT_EQ(restored.num_checkpoints(), 2);
}

}  // namespace
}  // namespace cpdg
