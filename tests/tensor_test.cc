#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "tensor/losses.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace cpdg::tensor {
namespace {

using cpdg::testing::ExpectGradientsMatch;

Tensor MakeRandom(int64_t r, int64_t c, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandomUniform(r, c, 1.0f, &rng, /*requires_grad=*/true);
}

TEST(TensorTest, FactoryShapesAndValues) {
  Tensor z = Tensor::Zeros(2, 3);
  EXPECT_EQ(z.rows(), 2);
  EXPECT_EQ(z.cols(), 3);
  EXPECT_EQ(z.size(), 6);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) EXPECT_EQ(z.at(i, j), 0.0f);
  }
  Tensor o = Tensor::Ones(1, 4);
  EXPECT_EQ(o.at(0, 3), 1.0f);
  Tensor f = Tensor::Full(2, 2, 3.5f);
  EXPECT_EQ(f.at(1, 1), 3.5f);
}

TEST(TensorTest, FromVectorRoundTrip) {
  Tensor t = Tensor::FromVector(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, XavierRange) {
  Rng rng(7);
  Tensor t = Tensor::XavierUniform(10, 20, &rng);
  float limit = std::sqrt(6.0f / 30.0f);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::fabs(t.data()[i]), limit);
  }
}

TEST(TensorTest, DetachCutsGraph) {
  Tensor a = MakeRandom(2, 2, 1);
  Tensor b = Sigmoid(a);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.at(0, 0), b.at(0, 0));
  // Mutating the detached copy must not affect the original.
  d.set(0, 0, 42.0f);
  EXPECT_NE(b.at(0, 0), 42.0f);
}

TEST(TensorTest, CopyDataFrom) {
  Tensor a = Tensor::Zeros(2, 2);
  Tensor b = Tensor::Full(2, 2, 5.0f);
  a.CopyDataFrom(b);
  EXPECT_EQ(a.at(1, 1), 5.0f);
}

TEST(TensorTest, BackwardSimpleChain) {
  // y = sum(3 * x) => dy/dx = 3.
  Tensor x = Tensor::Full(2, 2, 1.0f, true);
  Tensor y = Sum(MulScalar(x, 3.0f));
  y.Backward();
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 3.0f);
}

TEST(TensorTest, BackwardAccumulatesOverUses) {
  // y = sum(x + x) => dy/dx = 2.
  Tensor x = Tensor::Full(1, 3, 1.0f, true);
  Tensor y = Sum(Add(x, x));
  y.Backward();
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 2.0f);
}

TEST(TensorTest, BackwardDiamondGraph) {
  // z = sum(a*b + a) with shared a: checks topological ordering.
  Tensor a = Tensor::Full(1, 2, 2.0f, true);
  Tensor b = Tensor::Full(1, 2, 3.0f, true);
  Tensor z = Sum(Add(Mul(a, b), a));
  z.Backward();
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_FLOAT_EQ(a.grad()[i], 4.0f);  // b + 1
    EXPECT_FLOAT_EQ(b.grad()[i], 2.0f);  // a
  }
}

TEST(TensorTest, NoLeakAfterBackward) {
  int64_t before = LiveTensorCount();
  {
    Tensor x = MakeRandom(4, 4, 3);
    Tensor loss = Mean(Square(Sigmoid(MatMul(x, Transpose(x)))));
    loss.Backward();
  }
  EXPECT_EQ(LiveTensorCount(), before);
}

// ---------- Forward-value checks ----------

TEST(OpsTest, MatMulValues) {
  Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(OpsTest, BroadcastAddRow) {
  Tensor a = Tensor::FromVector(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector(1, 2, {10, 20});
  Tensor c = Add(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 24.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a = MakeRandom(5, 7, 11);
  Tensor s = Softmax(a);
  for (int64_t r = 0; r < 5; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < 7; ++c) {
      EXPECT_GT(s.at(r, c), 0.0f);
      sum += s.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, ReductionValues) {
  Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(Sum(a).item(), 21.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 3.5f);
  Tensor rs = RowSum(a);
  EXPECT_FLOAT_EQ(rs.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(rs.at(1, 0), 15.0f);
  Tensor cm = ColMean(a);
  EXPECT_FLOAT_EQ(cm.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(cm.at(0, 2), 4.5f);
}

TEST(OpsTest, ConcatAndSlice) {
  Tensor a = Tensor::FromVector(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector(2, 1, {5, 6});
  Tensor c = Concat(a, b);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c.at(0, 2), 5.0f);
  Tensor s = SliceCols(c, 1, 2);
  EXPECT_FLOAT_EQ(s.at(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(s.at(1, 1), 6.0f);
  Tensor r = SliceRows(c, 1, 1);
  EXPECT_EQ(r.rows(), 1);
  EXPECT_FLOAT_EQ(r.at(0, 0), 3.0f);
}

TEST(OpsTest, ConcatRowsStacksInOrder) {
  Tensor a = Tensor::FromVector(1, 2, {1, 2});
  Tensor b = Tensor::FromVector(2, 2, {3, 4, 5, 6});
  Tensor c = ConcatRows({a, b});
  EXPECT_EQ(c.rows(), 3);
  EXPECT_FLOAT_EQ(c.at(2, 1), 6.0f);
}

TEST(OpsTest, GatherPicksRows) {
  Tensor t = Tensor::FromVector(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor g = Gather(t, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(g.at(2, 1), 6.0f);
}

TEST(OpsTest, RepeatRows) {
  Tensor a = Tensor::FromVector(1, 2, {1, 2});
  Tensor r = RepeatRows(a, 3);
  EXPECT_EQ(r.rows(), 3);
  EXPECT_FLOAT_EQ(r.at(2, 1), 2.0f);
}

TEST(OpsTest, L2NormalizeRows) {
  Tensor a = Tensor::FromVector(1, 2, {3, 4});
  Tensor n = L2NormalizeRows(a);
  EXPECT_NEAR(n.at(0, 0), 0.6f, 1e-5f);
  EXPECT_NEAR(n.at(0, 1), 0.8f, 1e-5f);
}

TEST(OpsTest, GroupedMeanMasksPadding) {
  // Two groups of 2; second entry of group 1 invalid.
  Tensor v = Tensor::FromVector(4, 2, {1, 2, 3, 4, 10, 20, 99, 99});
  std::vector<uint8_t> valid = {1, 1, 1, 0};
  Tensor m = GroupedMean(v, 2, valid);
  EXPECT_FLOAT_EQ(m.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 10.0f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 20.0f);
}

TEST(OpsTest, GroupedMeanEmptyGroupYieldsZero) {
  Tensor v = Tensor::FromVector(2, 1, {5, 7});
  std::vector<uint8_t> valid = {0, 0};
  Tensor m = GroupedMean(v, 2, valid);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
}

TEST(OpsTest, GroupedAttentionUniformWhenKeysEqual) {
  // Equal keys => uniform attention => output is the mean of values.
  Tensor q = Tensor::FromVector(1, 2, {1, 0});
  Tensor k = Tensor::FromVector(2, 2, {1, 1, 1, 1});
  Tensor v = Tensor::FromVector(2, 2, {0, 2, 4, 6});
  std::vector<uint8_t> valid = {1, 1};
  Tensor out = GroupedAttention(q, k, v, 2, valid);
  EXPECT_NEAR(out.at(0, 0), 2.0f, 1e-5f);
  EXPECT_NEAR(out.at(0, 1), 4.0f, 1e-5f);
}

TEST(OpsTest, GroupedAttentionMasksInvalid) {
  Tensor q = Tensor::FromVector(1, 2, {1, 0});
  Tensor k = Tensor::FromVector(2, 2, {1, 1, 9, 9});
  Tensor v = Tensor::FromVector(2, 2, {1, 2, 100, 100});
  std::vector<uint8_t> valid = {1, 0};
  Tensor out = GroupedAttention(q, k, v, 2, valid);
  EXPECT_NEAR(out.at(0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(out.at(0, 1), 2.0f, 1e-5f);
}

TEST(OpsTest, GroupedAttentionAllInvalidYieldsZeros) {
  Tensor q = Tensor::FromVector(1, 2, {1, 0});
  Tensor k = Tensor::FromVector(2, 2, {1, 1, 1, 1});
  Tensor v = Tensor::FromVector(2, 2, {5, 5, 5, 5});
  std::vector<uint8_t> valid = {0, 0};
  Tensor out = GroupedAttention(q, k, v, 2, valid);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
}

// ---------- Gradient checks ----------

TEST(GradTest, ElementwiseBinaryOps) {
  ExpectGradientsMatch(
      {MakeRandom(3, 4, 21), MakeRandom(3, 4, 22)},
      [](std::vector<Tensor>& in) { return Sum(Mul(in[0], in[1])); });
  ExpectGradientsMatch(
      {MakeRandom(3, 4, 23), MakeRandom(3, 4, 24)},
      [](std::vector<Tensor>& in) { return Sum(Sub(in[0], in[1])); });
  Rng rng(25);
  Tensor denom = Tensor::RandomUniform(3, 4, 0.5f, &rng, true);
  // Shift away from zero for a stable division.
  for (int64_t i = 0; i < denom.size(); ++i) denom.data()[i] += 2.0f;
  ExpectGradientsMatch(
      {MakeRandom(3, 4, 26), denom},
      [](std::vector<Tensor>& in) { return Sum(Div(in[0], in[1])); });
}

TEST(GradTest, BroadcastOps) {
  ExpectGradientsMatch(
      {MakeRandom(4, 3, 31), MakeRandom(1, 3, 32)},
      [](std::vector<Tensor>& in) {
        return Mean(Square(Add(in[0], in[1])));
      });
  ExpectGradientsMatch(
      {MakeRandom(4, 3, 33), MakeRandom(1, 3, 34)},
      [](std::vector<Tensor>& in) {
        return Mean(Square(Mul(in[0], in[1])));
      });
}

TEST(GradTest, MatMulAndTranspose) {
  ExpectGradientsMatch(
      {MakeRandom(3, 4, 41), MakeRandom(4, 2, 42)},
      [](std::vector<Tensor>& in) {
        return Mean(Square(MatMul(in[0], in[1])));
      });
  ExpectGradientsMatch({MakeRandom(3, 4, 43)},
                       [](std::vector<Tensor>& in) {
                         return Sum(Transpose(in[0]));
                       });
}

TEST(GradTest, UnaryOps) {
  ExpectGradientsMatch({MakeRandom(2, 5, 51)}, [](std::vector<Tensor>& in) {
    return Mean(Sigmoid(in[0]));
  });
  ExpectGradientsMatch({MakeRandom(2, 5, 52)}, [](std::vector<Tensor>& in) {
    return Mean(Tanh(in[0]));
  });
  ExpectGradientsMatch({MakeRandom(2, 5, 54)}, [](std::vector<Tensor>& in) {
    return Mean(Exp(in[0]));
  });
  ExpectGradientsMatch({MakeRandom(2, 5, 55)}, [](std::vector<Tensor>& in) {
    return Mean(Cos(in[0]));
  });
  ExpectGradientsMatch({MakeRandom(2, 5, 56)}, [](std::vector<Tensor>& in) {
    return Mean(Sin(in[0]));
  });
  ExpectGradientsMatch({MakeRandom(2, 5, 57)}, [](std::vector<Tensor>& in) {
    return Mean(Square(in[0]));
  });
}

TEST(GradTest, SoftmaxAndReductions) {
  ExpectGradientsMatch({MakeRandom(3, 5, 61)}, [](std::vector<Tensor>& in) {
    return Mean(Square(Softmax(in[0])));
  });
  ExpectGradientsMatch({MakeRandom(3, 5, 62)}, [](std::vector<Tensor>& in) {
    return Mean(Square(RowSum(in[0])));
  });
  ExpectGradientsMatch({MakeRandom(3, 5, 63)}, [](std::vector<Tensor>& in) {
    return Mean(Square(ColMean(in[0])));
  });
}

TEST(GradTest, ShapeOps) {
  ExpectGradientsMatch(
      {MakeRandom(3, 2, 71), MakeRandom(3, 3, 72)},
      [](std::vector<Tensor>& in) {
        return Mean(Square(Concat(in[0], in[1])));
      });
  ExpectGradientsMatch(
      {MakeRandom(2, 3, 73), MakeRandom(1, 3, 74)},
      [](std::vector<Tensor>& in) {
        return Mean(Square(ConcatRows({in[0], in[1]})));
      });
  ExpectGradientsMatch({MakeRandom(4, 3, 75)}, [](std::vector<Tensor>& in) {
    return Mean(Square(SliceRows(in[0], 1, 2)));
  });
  ExpectGradientsMatch({MakeRandom(4, 3, 76)}, [](std::vector<Tensor>& in) {
    return Mean(Square(SliceCols(in[0], 1, 2)));
  });
  ExpectGradientsMatch({MakeRandom(1, 3, 77)}, [](std::vector<Tensor>& in) {
    return Mean(Square(RepeatRows(in[0], 4)));
  });
}

TEST(GradTest, GatherScattersIntoTable) {
  ExpectGradientsMatch({MakeRandom(5, 3, 81)}, [](std::vector<Tensor>& in) {
    return Mean(Square(Gather(in[0], {0, 2, 2, 4})));
  });
}

TEST(GradTest, GroupedAttention) {
  ExpectGradientsMatch(
      {MakeRandom(2, 3, 91), MakeRandom(6, 3, 92), MakeRandom(6, 4, 93)},
      [](std::vector<Tensor>& in) {
        std::vector<uint8_t> valid = {1, 1, 0, 1, 1, 1};
        return Mean(Square(GroupedAttention(in[0], in[1], in[2], 3, valid)));
      });
}

TEST(GradTest, GroupedMean) {
  ExpectGradientsMatch({MakeRandom(6, 3, 95)}, [](std::vector<Tensor>& in) {
    std::vector<uint8_t> valid = {1, 0, 1, 1, 1, 0};
    return Mean(Square(GroupedMean(in[0], 3, valid)));
  });
}

TEST(GradTest, Losses) {
  Rng rng(101);
  Tensor targets = Tensor::FromVector(4, 1, {1, 0, 1, 0});
  ExpectGradientsMatch({MakeRandom(4, 1, 102)},
                       [targets](std::vector<Tensor>& in) {
                         return BceWithLogitsLoss(in[0], targets);
                       });
  ExpectGradientsMatch(
      {MakeRandom(3, 4, 103), MakeRandom(3, 4, 104), MakeRandom(3, 4, 105)},
      [](std::vector<Tensor>& in) {
        return TripletMarginLoss(in[0], in[1], in[2], 0.5f);
      });
  ExpectGradientsMatch(
      {MakeRandom(3, 4, 106), MakeRandom(3, 4, 107)},
      [](std::vector<Tensor>& in) { return MseLoss(in[0], in[1]); });
}

TEST(GradTest, L2NormalizeRows) {
  ExpectGradientsMatch({MakeRandom(3, 4, 111)},
                       [](std::vector<Tensor>& in) {
                         return Mean(Square(L2NormalizeRows(in[0])));
                       });
}

}  // namespace
}  // namespace cpdg::tensor
