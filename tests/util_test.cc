#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace cpdg {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.6);
}

TEST(RngTest, ZipfFavorsHead) {
  Rng rng(17);
  int head = 0, tail = 0;
  for (int i = 0; i < 2000; ++i) {
    size_t pick = rng.NextZipf(100, 1.0);
    if (pick < 10) {
      ++head;
    } else {
      ++tail;
    }
  }
  EXPECT_GT(head, tail);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(RngTest, SplitStreamsIndependent) {
  Rng parent(23);
  Rng child1 = parent.Split();
  Rng child2 = parent.Split();
  EXPECT_NE(child1.NextUint64(), child2.NextUint64());
}

TEST(StatsTest, RunningStatsMeanAndStd) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_NEAR(s.mean(), 5.0, 1e-9);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(StatsTest, VectorHelpers) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_NEAR(Mean(v), 2.0, 1e-12);
  EXPECT_NEAR(StdDev(v), 1.0, 1e-12);
  EXPECT_EQ(StdDev({5.0}), 0.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Method", "AUC"});
  t.AddRow({"TGN", "0.85"});
  t.AddSeparator();
  t.AddRow({"CPDG", "0.87"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("CPDG"), std::string::npos);
  EXPECT_NE(out.find("+"), std::string::npos);
}

TEST(TablePrinterTest, FormatMeanStd) {
  EXPECT_EQ(TablePrinter::FormatMeanStd(0.85, 0.01), "0.8500±0.0100");
  EXPECT_EQ(TablePrinter::FormatFloat(1.23456, 2), "1.23");
}

}  // namespace
}  // namespace cpdg
