// Overload-robustness and fault-recovery tests for the multi-shard serving
// engine: bounded-queue admission (reject / shed-oldest / block), deadline
// expiry and stale degradation, the cross-shard advance barrier, and
// watchdog-driven shard restart under injected executor stalls, replay
// failures, and checkpoint-reload corruption.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dgnn/encoder.h"
#include "graph/temporal_graph.h"
#include "gtest/gtest.h"
#include "serve/embedding_cache.h"
#include "serve/journal.h"
#include "serve/request_queue.h"
#include "serve/serving_engine.h"
#include "tensor/checkpoint_container.h"
#include "tensor/ops.h"
#include "tensor/serialization.h"
#include "tensor/tensor.h"
#include "train/checkpoint.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace cpdg {
namespace {

namespace ts = tensor;

constexpr int64_t kNumNodes = 30;
constexpr int64_t kPredictorHidden = 16;
/// Below serve::kAdvanceReplayBatch so a reference ReplayEvents over the
/// same events is trivially batched identically.
constexpr size_t kAdvanceEvents = 40;

dgnn::EncoderConfig SmallConfig() {
  dgnn::EncoderConfig config;
  config.num_nodes = kNumNodes;
  config.memory_dim = 8;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.num_neighbors = 3;
  return config;
}

std::vector<graph::Event> MakeEvents(uint64_t seed, size_t count, double t0) {
  Rng rng(seed);
  std::vector<graph::Event> events;
  events.reserve(count);
  double t = t0;
  for (size_t i = 0; i < count; ++i) {
    graph::Event e;
    e.src = static_cast<graph::NodeId>(rng.NextBounded(kNumNodes));
    e.dst = static_cast<graph::NodeId>(rng.NextBounded(kNumNodes));
    if (e.dst == e.src) e.dst = (e.src + 1) % kNumNodes;
    t += rng.NextUniform(0.1, 2.0);
    e.time = t;
    events.push_back(e);
  }
  return events;
}

/// Reference model pair with warm memory plus the checkpoint the serving
/// engine loads (same construction as serving_test.cc).
struct Fixture {
  graph::TemporalGraph graph;
  Rng rng{42};
  std::unique_ptr<dgnn::DgnnEncoder> encoder;
  std::unique_ptr<dgnn::LinkPredictor> predictor;
  std::string checkpoint_path;

  explicit Fixture(const std::string& name) {
    graph = graph::TemporalGraph::Create(kNumNodes, MakeEvents(7, 120, 0.0))
                .ValueOrDie();
    encoder =
        std::make_unique<dgnn::DgnnEncoder>(SmallConfig(), &graph, &rng);
    predictor = std::make_unique<dgnn::LinkPredictor>(
        SmallConfig().embed_dim, kPredictorHidden, &rng);
    {
      ts::InferenceModeGuard guard;
      encoder->ReplayEvents(graph.events(), /*batch_size=*/16);
    }
    checkpoint_path = ::testing::TempDir() + "serve_robust_" + name + ".ckpt";
    WriteCheckpoint(checkpoint_path);
  }

  void WriteCheckpoint(const std::string& path) const {
    std::vector<ts::Tensor> params = encoder->Parameters();
    std::vector<ts::Tensor> dec = predictor->Parameters();
    params.insert(params.end(), dec.begin(), dec.end());
    ts::SectionWriter writer;
    writer.Add(ts::kParamsSection,
               ts::EncodeTensorList(params).ValueOrDie());
    std::string memory_bytes;
    encoder->memory().SerializeTo(&memory_bytes);
    writer.Add(train::kMemorySection, memory_bytes);
    ASSERT_TRUE(writer.WriteAtomic(path).ok());
  }

  ts::Tensor DirectEmbed(const std::vector<graph::NodeId>& nodes,
                         double time) {
    ts::InferenceModeGuard guard;
    encoder->BeginBatch();
    return encoder->ComputeEmbeddings(
        nodes, std::vector<double>(nodes.size(), time));
  }
};

void ExpectBitIdentical(const ts::Tensor& a, const ts::Tensor& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<size_t>(a.size()) * sizeof(float)));
}

bool WaitFor(const std::function<bool()>& pred, int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// Deletes any journal entries a previous test-binary run left behind —
/// TempDir persists across runs, and a stale journal would replay into
/// the fresh fixture.
void ClearJournalDir(const std::string& dir) {
  for (int64_t seq = 0;; ++seq) {
    if (std::remove(serve::JournalEntryPath(dir, seq).c_str()) != 0) break;
  }
}

std::unique_ptr<serve::Request> MakeEmbedRequest(graph::NodeId node) {
  auto request = std::make_unique<serve::Request>();
  request->kind = serve::Request::Kind::kEmbed;
  request->nodes = {node};
  return request;
}

// ---------------------------------------------------------------------------
// Admission-policy state machines on the bare queue.
// ---------------------------------------------------------------------------

TEST(RequestQueueTest, RejectPolicyFillRejectDrainAccept) {
  serve::RequestQueue::Options options;
  options.limit = 2;
  options.policy = serve::OverloadPolicy::kReject;
  serve::RequestQueue queue(options);

  auto r1 = MakeEmbedRequest(1);
  auto r2 = MakeEmbedRequest(2);
  auto r3 = MakeEmbedRequest(3);
  EXPECT_EQ(queue.Push(r1), serve::PushOutcome::kAccepted);
  EXPECT_EQ(queue.Push(r2), serve::PushOutcome::kAccepted);
  EXPECT_EQ(queue.Push(r3), serve::PushOutcome::kRejected);
  ASSERT_NE(r3, nullptr);  // rejected request stays with the caller
  EXPECT_EQ(queue.depth(), 2);
  EXPECT_EQ(queue.peak_depth(), 2);

  auto batch = queue.PopBatch(10, std::chrono::microseconds(0));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(queue.Push(r3), serve::PushOutcome::kAccepted);
  EXPECT_EQ(queue.depth(), 1);
}

TEST(RequestQueueTest, ShedOldestReturnsVictimsAndSparesBarriers) {
  serve::RequestQueue::Options options;
  options.limit = 2;
  options.policy = serve::OverloadPolicy::kShedOldest;
  serve::RequestQueue queue(options);

  auto r1 = MakeEmbedRequest(1);
  auto r2 = MakeEmbedRequest(2);
  auto r3 = MakeEmbedRequest(3);
  EXPECT_EQ(queue.Push(r1), serve::PushOutcome::kAccepted);
  EXPECT_EQ(queue.Push(r2), serve::PushOutcome::kAccepted);
  std::vector<std::unique_ptr<serve::Request>> shed;
  EXPECT_EQ(queue.Push(r3, &shed), serve::PushOutcome::kAccepted);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0]->nodes[0], 1);  // oldest victim
  EXPECT_EQ(queue.depth(), 2);

  // Barriers are never shed: with only barriers queued, shed-oldest
  // degrades to reject.
  serve::RequestQueue::Options barrier_options;
  barrier_options.limit = 1;
  barrier_options.policy = serve::OverloadPolicy::kShedOldest;
  serve::RequestQueue barrier_queue(barrier_options);
  auto barrier = std::make_unique<serve::Request>();
  barrier->kind = serve::Request::Kind::kAdvance;
  EXPECT_EQ(barrier_queue.PushControl(barrier),
            serve::PushOutcome::kAccepted);
  auto r4 = MakeEmbedRequest(4);
  shed.clear();
  EXPECT_EQ(barrier_queue.Push(r4, &shed), serve::PushOutcome::kRejected);
  EXPECT_TRUE(shed.empty());
  ASSERT_NE(r4, nullptr);
}

TEST(RequestQueueTest, BlockPolicyWaitsForSpaceAndShutdownUnblocks) {
  serve::RequestQueue::Options options;
  options.limit = 1;
  options.policy = serve::OverloadPolicy::kBlock;
  serve::RequestQueue queue(options);

  auto r1 = MakeEmbedRequest(1);
  ASSERT_EQ(queue.Push(r1), serve::PushOutcome::kAccepted);

  std::atomic<int> state{0};  // 0 = blocked, 1 = accepted
  std::thread producer([&] {
    auto r2 = MakeEmbedRequest(2);
    if (queue.Push(r2) == serve::PushOutcome::kAccepted) state.store(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(state.load(), 0);  // still blocked at capacity
  auto batch = queue.PopBatch(1, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 1u);
  producer.join();
  EXPECT_EQ(state.load(), 1);
  EXPECT_EQ(queue.depth(), 1);

  // A producer blocked at capacity is released by Shutdown with kShutdown.
  std::atomic<bool> got_shutdown{false};
  std::thread blocked([&] {
    auto r3 = MakeEmbedRequest(3);
    got_shutdown.store(queue.Push(r3) == serve::PushOutcome::kShutdown);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  queue.Shutdown();
  blocked.join();
  EXPECT_TRUE(got_shutdown.load());
}

TEST(RequestQueueTest, RacingPushersAgainstShutdownLoseNoRequest) {
  serve::RequestQueue::Options options;
  options.limit = 8;
  options.policy = serve::OverloadPolicy::kReject;
  serve::RequestQueue queue(options);

  std::atomic<int64_t> accepted{0};
  std::atomic<int64_t> consumed{0};
  std::vector<std::thread> pushers;
  for (int t = 0; t < 4; ++t) {
    pushers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        auto r = MakeEmbedRequest((t * 200 + i) % kNumNodes);
        if (queue.Push(r) == serve::PushOutcome::kAccepted) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  std::thread consumer([&] {
    while (true) {
      auto batch = queue.PopBatch(4, std::chrono::microseconds(100));
      if (batch.empty()) return;  // shutdown and drained
      consumed.fetch_add(static_cast<int64_t>(batch.size()));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Shutdown();
  for (auto& p : pushers) p.join();
  consumer.join();
  consumed.fetch_add(static_cast<int64_t>(queue.DrainAll().size()));
  // Every accepted request was either consumed or drained — none dropped.
  EXPECT_EQ(accepted.load(), consumed.load());
}

TEST(RequestQueueTest, DrainAllEmptiesTheQueue) {
  serve::RequestQueue queue;
  for (graph::NodeId v : {1, 2, 3}) {
    auto r = MakeEmbedRequest(v);
    ASSERT_EQ(queue.Push(r), serve::PushOutcome::kAccepted);
  }
  auto drained = queue.DrainAll();
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_EQ(queue.depth(), 0);
  EXPECT_EQ(queue.peak_depth(), 3);
}

// ---------------------------------------------------------------------------
// Pure policy units.
// ---------------------------------------------------------------------------

TEST(AdmissionTest, DecideAdmissionBudgetThresholds) {
  using serve::AdmissionDecision;
  // No deadline: always compute.
  EXPECT_EQ(serve::DecideAdmission(1000, 0, 0), AdmissionDecision::kCompute);
  // Already expired (at or past the deadline): never computed.
  EXPECT_EQ(serve::DecideAdmission(1000, 0, 1000),
            AdmissionDecision::kExpire);
  EXPECT_EQ(serve::DecideAdmission(1500, 0, 1000),
            AdmissionDecision::kExpire);
  // Under half the budget burned: compute fresh.
  EXPECT_EQ(serve::DecideAdmission(499, 0, 1000),
            AdmissionDecision::kCompute);
  // Half or more burned: prefer a stale cache hit.
  EXPECT_EQ(serve::DecideAdmission(500, 0, 1000),
            AdmissionDecision::kTryStale);
  EXPECT_EQ(serve::DecideAdmission(999, 0, 1000),
            AdmissionDecision::kTryStale);
  // Thresholds are relative to enqueue, not epoch.
  EXPECT_EQ(serve::DecideAdmission(1100, 1000, 2000),
            AdmissionDecision::kCompute);
  EXPECT_EQ(serve::DecideAdmission(1600, 1000, 2000),
            AdmissionDecision::kTryStale);
}

TEST(AdmissionTest, ParseOverloadPolicyVocabulary) {
  EXPECT_EQ(serve::ParseOverloadPolicy("reject").ValueOrDie(),
            serve::OverloadPolicy::kReject);
  EXPECT_EQ(serve::ParseOverloadPolicy("shed-oldest").ValueOrDie(),
            serve::OverloadPolicy::kShedOldest);
  EXPECT_EQ(serve::ParseOverloadPolicy("block").ValueOrDie(),
            serve::OverloadPolicy::kBlock);
  EXPECT_FALSE(serve::ParseOverloadPolicy("drop-newest").ok());
  EXPECT_FALSE(serve::ParseOverloadPolicy("").ok());
}

TEST(EmbeddingCacheTest, AnyVersionLookupServesStaleGenerations) {
  serve::EmbeddingCache cache(4);
  cache.Insert({5, 1.0, /*version=*/7}, {1.0f, 2.0f});
  std::vector<float> row;
  // Exact lookup at a newer version misses…
  EXPECT_FALSE(cache.Lookup({5, 1.0, 8}, &row));
  // …but the degraded lookup returns the stale generation and its version.
  uint64_t version = 0;
  ASSERT_TRUE(cache.LookupAnyVersion(5, 1.0, &row, &version));
  EXPECT_EQ(version, 7u);
  EXPECT_EQ(row[0], 1.0f);
  // A fresh insert for the same (node, time) supersedes in place.
  cache.Insert({5, 1.0, 8}, {3.0f, 4.0f});
  EXPECT_EQ(cache.size(), 1);
  ASSERT_TRUE(cache.LookupAnyVersion(5, 1.0, &row, &version));
  EXPECT_EQ(version, 8u);
  EXPECT_EQ(row[0], 3.0f);
}

// ---------------------------------------------------------------------------
// Engine-level overload behavior.
// ---------------------------------------------------------------------------

TEST(ServeRobustnessTest, OverloadRejectsWithResourceExhausted) {
  Fixture fx("overload_reject");
  serve::ServingOptions options;
  options.max_batch = 1;
  options.queue_limit = 4;
  options.overload = serve::OverloadPolicy::kReject;
  auto engine = serve::ServingEngine::FromCheckpoint(
                    SmallConfig(), kPredictorHidden, &fx.graph,
                    fx.checkpoint_path, options)
                    .TakeValue();
  const double t = fx.graph.max_time() + 1.0;

  util::FaultInjector::Scope stall([] {
    util::FaultInjector::Config c;
    c.serve_stall_millis = 800;
    return c;
  }());
  std::vector<std::future<Result<serve::EmbedResponse>>> accepted;
  int64_t rejected = 0;
  for (int i = 0; i < 11; ++i) {
    // Same node: everything lands on one shard queue.
    auto r = engine->EmbedAsync({0}, t);
    if (r.ok()) {
      accepted.push_back(r.TakeValue());
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
          << r.status().ToString();
      ++rejected;
    }
  }
  // One request in flight (stalled) + 4 queued at the limit; the rest of
  // the 11 must have been turned away at admission.
  EXPECT_GE(rejected, 6);
  EXPECT_EQ(engine->rejected_count(), rejected);
  EXPECT_LE(engine->queue_peak_depth(), options.queue_limit);
  for (auto& future : accepted) {
    auto response = future.get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response.value().stale);
    EXPECT_GE(response.value().latency_us, 0);
  }
}

TEST(ServeRobustnessTest, ExpiredDeadlineFailsInsteadOfComputing) {
  Fixture fx("deadline");
  auto engine = serve::ServingEngine::FromCheckpoint(
                    SmallConfig(), kPredictorHidden, &fx.graph,
                    fx.checkpoint_path)
                    .TakeValue();
  const double t = fx.graph.max_time() + 1.0;

  util::FaultInjector::Scope stall([] {
    util::FaultInjector::Config c;
    c.serve_stall_millis = 800;
    return c;
  }());
  // No deadline: survives the stall. 200 ms deadline: expires behind it.
  auto patient = engine->EmbedAsync({0}, t);
  ASSERT_TRUE(patient.ok());
  auto hurried = engine->EmbedAsync({0}, t, /*deadline_us=*/200000);
  ASSERT_TRUE(hurried.ok());

  auto hurried_result = hurried.TakeValue().get();
  ASSERT_FALSE(hurried_result.ok());
  EXPECT_EQ(hurried_result.status().code(), StatusCode::kDeadlineExceeded)
      << hurried_result.status().ToString();
  EXPECT_GE(engine->deadline_exceeded_count(), 1);

  auto patient_result = patient.TakeValue().get();
  ASSERT_TRUE(patient_result.ok()) << patient_result.status().ToString();
  ExpectBitIdentical(patient_result.value().embeddings,
                     fx.DirectEmbed({0}, t));
}

TEST(ServeRobustnessTest, DeadlinePressureServesStaleCacheHit) {
  Fixture fx("stale");
  serve::ServingOptions options;
  options.default_deadline_us = 2000000;  // 2 s budget
  auto engine = serve::ServingEngine::FromCheckpoint(
                    SmallConfig(), kPredictorHidden, &fx.graph,
                    fx.checkpoint_path, options)
                    .TakeValue();
  ASSERT_TRUE(engine->options().keep_stale_entries);  // forced by deadline
  const double t = fx.graph.max_time() + 50.0;

  // Warm the cache at the current version.
  auto warm = engine->EmbedFull({0}, t);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_FALSE(warm.value().stale);
  const uint64_t v0 = engine->memory_version();

  // Advance moves the fleet version; stale entries survive (keep mode).
  ASSERT_TRUE(
      engine->Advance(MakeEvents(99, kAdvanceEvents, fx.graph.max_time()))
          .ok());
  ASSERT_GT(engine->memory_version(), v0);

  // Burn >half the budget behind an injected stall; the executor should
  // degrade to the cached pre-advance row rather than compute or expire.
  util::FaultInjector::Scope stall([] {
    util::FaultInjector::Config c;
    c.serve_stall_millis = 1200;
    return c;
  }());
  auto pressed = engine->EmbedFull({0}, t);
  ASSERT_TRUE(pressed.ok()) << pressed.status().ToString();
  EXPECT_TRUE(pressed.value().stale);
  EXPECT_EQ(engine->stale_served_count(), 1);
  // The stale answer is the pre-advance generation, bit for bit.
  ExpectBitIdentical(pressed.value().embeddings, warm.value().embeddings);

  // Unpressed requests compute fresh at the new version.
  auto fresh = engine->EmbedFull({0}, t);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value().stale);
  EXPECT_EQ(fresh.value().memory_version, engine->memory_version());
}

// ---------------------------------------------------------------------------
// Multi-shard consistency.
// ---------------------------------------------------------------------------

TEST(ServeRobustnessTest, MultiShardServingIsBitIdenticalAcrossAdvance) {
  Fixture fx("multishard");
  serve::ServingOptions options;
  options.num_shards = 3;
  auto engine = serve::ServingEngine::FromCheckpoint(
                    SmallConfig(), kPredictorHidden, &fx.graph,
                    fx.checkpoint_path, options)
                    .TakeValue();
  ASSERT_EQ(engine->num_shards(), 3);
  const double t = fx.graph.max_time() + 5.0;

  std::vector<graph::NodeId> all_nodes;
  for (graph::NodeId v = 0; v < kNumNodes; ++v) all_nodes.push_back(v);
  ts::Tensor direct = fx.DirectEmbed(all_nodes, t);

  // Single-node requests spread over all three shards by node affinity;
  // every row must match the direct forward bit for bit.
  for (graph::NodeId v = 0; v < kNumNodes; ++v) {
    auto r = engine->EmbedFull({v}, t);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r.value().stale);
    ASSERT_EQ(0, std::memcmp(r.value().embeddings.data(),
                             direct.data() + v * direct.cols(),
                             static_cast<size_t>(direct.cols()) *
                                 sizeof(float)))
        << "row " << v << " differs from the direct forward";
  }

  // A fleet advance replays the full stream on every replica and leaves
  // them on one memory version.
  std::vector<graph::Event> fresh =
      MakeEvents(99, kAdvanceEvents, fx.graph.max_time() + 1.0);
  ASSERT_TRUE(engine->Advance(fresh).ok());
  std::vector<uint64_t> versions = engine->ShardMemoryVersions();
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0], versions[1]);
  EXPECT_EQ(versions[1], versions[2]);
  EXPECT_EQ(versions[0], engine->memory_version());

  {
    ts::InferenceModeGuard guard;
    fx.encoder->ReplayEvents(fresh, /*batch_size=*/128);
  }
  const double t2 = t + 60.0;
  ts::Tensor direct_after = fx.DirectEmbed(all_nodes, t2);
  for (graph::NodeId v = 0; v < kNumNodes; ++v) {
    auto r = engine->EmbedFull({v}, t2);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(0, std::memcmp(r.value().embeddings.data(),
                             direct_after.data() + v * direct_after.cols(),
                             static_cast<size_t>(direct_after.cols()) *
                                 sizeof(float)))
        << "post-advance row " << v << " differs";
  }
}

// ---------------------------------------------------------------------------
// Fault-injected recovery.
// ---------------------------------------------------------------------------

serve::ServingOptions FastWatchdogOptions() {
  serve::ServingOptions options;
  options.watchdog_interval_ms = 25;
  options.watchdog_max_missed = 4;  // wedge declared after ~100 ms
  options.quiesce_timeout_ms = 500;
  return options;
}

TEST(ServeRobustnessTest, WatchdogRestartsWedgedShard) {
  Fixture fx("wedge");
  auto engine = serve::ServingEngine::FromCheckpoint(
                    SmallConfig(), kPredictorHidden, &fx.graph,
                    fx.checkpoint_path, FastWatchdogOptions())
                    .TakeValue();
  const double t = fx.graph.max_time() + 1.0;

  util::FaultInjector::Scope stall([] {
    util::FaultInjector::Config c;
    c.serve_stall_millis = 2500;
    return c;
  }());
  // The victim request wedges the executor mid-flight.
  auto victim = engine->EmbedAsync({0}, t);
  ASSERT_TRUE(victim.ok());

  ASSERT_TRUE(WaitFor([&] { return engine->watchdog_restarts() >= 1; },
                      /*timeout_ms=*/10000))
      << "watchdog did not restart the wedged shard";

  // The rebuilt replica answers immediately — bitwise-identical to the
  // reference — while the zombie executor is still sleeping.
  auto probe = engine->EmbedFull({0}, t);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  ExpectBitIdentical(probe.value().embeddings, fx.DirectEmbed({0}, t));

  // The wedged request itself still completes (late, but correct): its
  // executor finishes the in-flight batch before retiring.
  auto victim_result = victim.TakeValue().get();
  ASSERT_TRUE(victim_result.ok()) << victim_result.status().ToString();
  ExpectBitIdentical(victim_result.value().embeddings,
                     fx.DirectEmbed({0}, t));
}

TEST(ServeRobustnessTest, ReplayFailureRecoversThroughJournal) {
  Fixture fx("replayfail");
  auto engine = serve::ServingEngine::FromCheckpoint(
                    SmallConfig(), kPredictorHidden, &fx.graph,
                    fx.checkpoint_path, FastWatchdogOptions())
                    .TakeValue();
  const uint64_t v0 = engine->memory_version();
  std::vector<graph::Event> fresh =
      MakeEvents(99, kAdvanceEvents, fx.graph.max_time() + 1.0);

  {
    util::FaultInjector::Scope fail([] {
      util::FaultInjector::Config c;
      c.serve_replay_fail = true;
      return c;
    }());
    // The only shard fails its replay: no live replica applied the
    // advance, but it is journaled for recovery.
    Status status = engine->Advance(fresh);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kUnavailable)
        << status.ToString();
  }

  // The watchdog rebuilds the shard from checkpoint + journal, which
  // contains the failed advance — the fleet version catches up.
  ASSERT_TRUE(WaitFor([&] { return engine->memory_version() > v0; },
                      /*timeout_ms=*/10000))
      << "restarted shard never caught up past version " << v0;
  EXPECT_GE(engine->watchdog_restarts(), 1);

  // Bitwise probe against a reference encoder that replayed the same
  // events with the same batching.
  {
    ts::InferenceModeGuard guard;
    fx.encoder->ReplayEvents(fresh, /*batch_size=*/128);
  }
  const double t = fx.graph.max_time() + 60.0;
  const std::vector<graph::NodeId> probe = {0, 1, 2, 3};
  ts::Tensor direct = fx.DirectEmbed(probe, t);
  ASSERT_TRUE(WaitFor(
      [&] {
        auto r = engine->EmbedFull(probe, t);
        return r.ok() &&
               std::memcmp(r.value().embeddings.data(), direct.data(),
                           static_cast<size_t>(direct.size()) *
                               sizeof(float)) == 0;
      },
      /*timeout_ms=*/5000))
      << "post-recovery serving does not match the reference replay";

  // Subsequent advances work normally.
  EXPECT_TRUE(
      engine->Advance(MakeEvents(123, 8, fx.graph.max_time() + 200.0)).ok());
}

TEST(ServeRobustnessTest, CorruptReloadIsRetriedUntilRestartSucceeds) {
  Fixture fx("reloadcorrupt");
  auto engine = serve::ServingEngine::FromCheckpoint(
                    SmallConfig(), kPredictorHidden, &fx.graph,
                    fx.checkpoint_path, FastWatchdogOptions())
                    .TakeValue();
  const double t = fx.graph.max_time() + 1.0;

  util::FaultInjector::Scope faults([] {
    util::FaultInjector::Config c;
    c.serve_stall_millis = 2500;   // wedge a shard to force a restart
    c.serve_reload_corrupt = 1;    // first rebuild hits a corrupt read
    return c;
  }());
  auto victim = engine->EmbedAsync({0}, t);
  ASSERT_TRUE(victim.ok());

  ASSERT_TRUE(WaitFor([&] { return engine->watchdog_restarts() >= 1; },
                      /*timeout_ms=*/10000))
      << "restart never succeeded after the corrupt reload";
  EXPECT_GE(engine->reload_failures(), 1);

  auto probe = engine->EmbedFull({1}, t);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  ExpectBitIdentical(probe.value().embeddings, fx.DirectEmbed({1}, t));
  ASSERT_TRUE(victim.TakeValue().get().ok());
}

// ---------------------------------------------------------------------------
// Recoverable load errors and shutdown semantics.
// ---------------------------------------------------------------------------

TEST(ServeRobustnessTest, FromCheckpointRejectsBadOptionsPerReason) {
  Fixture fx("badopts");
  const auto config = SmallConfig();
  const auto expect_invalid = [&](const serve::ServingOptions& options) {
    auto r = serve::ServingEngine::FromCheckpoint(
        config, kPredictorHidden, &fx.graph, fx.checkpoint_path, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << r.status().ToString();
  };
  {
    serve::ServingOptions o;
    o.num_shards = 0;
    expect_invalid(o);
  }
  {
    serve::ServingOptions o;
    o.num_shards = 1000;
    expect_invalid(o);
  }
  {
    serve::ServingOptions o;
    o.max_batch = 0;
    expect_invalid(o);
  }
  {
    serve::ServingOptions o;
    o.queue_limit = -1;
    expect_invalid(o);
  }
  {
    serve::ServingOptions o;
    o.default_deadline_us = -5;
    expect_invalid(o);
  }
  {
    serve::ServingOptions o;
    o.watchdog_max_missed = 0;
    expect_invalid(o);
  }
  // Null graph is a recoverable error, not an abort.
  auto null_graph = serve::ServingEngine::FromCheckpoint(
      config, kPredictorHidden, nullptr, fx.checkpoint_path);
  ASSERT_FALSE(null_graph.ok());
  EXPECT_EQ(null_graph.status().code(), StatusCode::kInvalidArgument);
  // Missing checkpoint file surfaces as an I/O-class status.
  auto missing = serve::ServingEngine::FromCheckpoint(
      config, kPredictorHidden, &fx.graph,
      ::testing::TempDir() + "does_not_exist.ckpt");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().code(), StatusCode::kInternal);
}

TEST(ServeRobustnessTest, ShutdownFailsRequestsWithExplicitStatus) {
  Fixture fx("shutdown_status");
  auto engine = serve::ServingEngine::FromCheckpoint(
                    SmallConfig(), kPredictorHidden, &fx.graph,
                    fx.checkpoint_path)
                    .TakeValue();
  ASSERT_TRUE(engine->EmbedFull({0}, 1.0).ok());
  engine->Shutdown();
  engine->Shutdown();  // idempotent

  auto embed = engine->EmbedFull({0}, 1.0);
  ASSERT_FALSE(embed.ok());
  EXPECT_EQ(embed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(embed.status().message().find("shut down"), std::string::npos);

  auto score = engine->ScoreLinksFull({0}, {1}, 1.0);
  ASSERT_FALSE(score.ok());
  EXPECT_EQ(score.status().code(), StatusCode::kFailedPrecondition);

  Status advance = engine->Advance(MakeEvents(5, 3, 100.0));
  ASSERT_FALSE(advance.ok());
  EXPECT_EQ(advance.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// On-disk advance journal (CPDG_SERVE_JOURNAL_DIR): process-restart
// recovery, corruption handling, and entry-sequence semantics.
// ---------------------------------------------------------------------------

TEST(JournalTest, RoundTripStopsAtFirstMissingEntry) {
  const std::string dir = ::testing::TempDir() + "journal_roundtrip";
  ClearJournalDir(dir);
  std::vector<graph::Event> batch0 = MakeEvents(1, 5, 10.0);
  std::vector<graph::Event> batch1 = MakeEvents(2, 3, 50.0);
  std::vector<graph::Event> batch2 = MakeEvents(3, 4, 90.0);
  ASSERT_TRUE(serve::AppendJournalEntry(dir, 0, kNumNodes, batch0).ok());
  ASSERT_TRUE(serve::AppendJournalEntry(dir, 1, kNumNodes, batch1).ok());
  ASSERT_TRUE(serve::AppendJournalEntry(dir, 2, kNumNodes, batch2).ok());

  auto all = serve::LoadJournal(dir, kNumNodes);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all.value().size(), 3u);
  ASSERT_EQ(all.value()[1].size(), batch1.size());
  EXPECT_EQ(all.value()[1][0].src, batch1[0].src);
  EXPECT_EQ(all.value()[1][0].dst, batch1[0].dst);
  EXPECT_EQ(all.value()[1][0].time, batch1[0].time);

  // The sequence is contiguous-from-0: removing entry 1 hides entry 2.
  ASSERT_EQ(std::remove(serve::JournalEntryPath(dir, 1).c_str()), 0);
  auto truncated = serve::LoadJournal(dir, kNumNodes);
  ASSERT_TRUE(truncated.ok()) << truncated.status().ToString();
  EXPECT_EQ(truncated.value().size(), 1u);

  // A journal written for one graph does not load against another size.
  auto wrong_size = serve::LoadJournal(dir, kNumNodes + 1);
  EXPECT_FALSE(wrong_size.ok());

  // A missing directory is an empty journal, not an error.
  auto missing = serve::LoadJournal(dir + "_nonexistent", kNumNodes);
  ASSERT_TRUE(missing.ok()) << missing.status().ToString();
  EXPECT_TRUE(missing.value().empty());
}

TEST(ServeRobustnessTest, JournaledAdvancesSurviveProcessRestart) {
  Fixture fx("journal_restart");
  serve::ServingOptions options;
  options.journal_dir = ::testing::TempDir() + "journal_restart_dir";
  ClearJournalDir(options.journal_dir);
  std::vector<graph::Event> fresh =
      MakeEvents(88, kAdvanceEvents, fx.graph.max_time() + 1.0);
  {
    auto engine = serve::ServingEngine::FromCheckpoint(
                      SmallConfig(), kPredictorHidden, &fx.graph,
                      fx.checkpoint_path, options)
                      .TakeValue();
    const uint64_t v0 = engine->memory_version();
    ASSERT_TRUE(engine->Advance(fresh).ok());
    EXPECT_GT(engine->memory_version(), v0);
    engine->Shutdown();
  }
  // The advance left a durable entry behind.
  std::ifstream entry(serve::JournalEntryPath(options.journal_dir, 0),
                      std::ios::binary);
  ASSERT_TRUE(entry.good());

  // A new process over the same checkpoint + journal dir resumes past the
  // journaled advance and serves the advanced state, bit-for-bit equal to
  // a reference encoder that replayed the same events.
  auto restarted = serve::ServingEngine::FromCheckpoint(
                       SmallConfig(), kPredictorHidden, &fx.graph,
                       fx.checkpoint_path, options)
                       .TakeValue();
  EXPECT_GT(restarted->memory_version(), 0u);
  {
    ts::InferenceModeGuard guard;
    fx.encoder->ReplayEvents(fresh, /*batch_size=*/128);
  }
  const double t = fx.graph.max_time() + 60.0;
  const std::vector<graph::NodeId> probe = {0, 1, 2, 3, 4};
  ExpectBitIdentical(restarted->Embed(probe, t).ValueOrDie(),
                     fx.DirectEmbed(probe, t));

  // New advances append at the recovered sequence position rather than
  // overwriting history.
  ASSERT_TRUE(
      restarted->Advance(MakeEvents(89, 8, fx.graph.max_time() + 100.0))
          .ok());
  std::ifstream next(serve::JournalEntryPath(options.journal_dir, 1),
                     std::ios::binary);
  EXPECT_TRUE(next.good());
  restarted->Shutdown();
}

TEST(ServeRobustnessTest, CorruptJournalEntryFailsLoadRecoverably) {
  Fixture fx("journal_corrupt");
  serve::ServingOptions options;
  options.journal_dir = ::testing::TempDir() + "journal_corrupt_dir";
  ClearJournalDir(options.journal_dir);
  {
    auto engine = serve::ServingEngine::FromCheckpoint(
                      SmallConfig(), kPredictorHidden, &fx.graph,
                      fx.checkpoint_path, options)
                      .TakeValue();
    ASSERT_TRUE(
        engine
            ->Advance(MakeEvents(91, kAdvanceEvents,
                                 fx.graph.max_time() + 1.0))
            .ok());
    engine->Shutdown();
  }
  // Flip one payload byte mid-file; the CRC must catch it.
  const std::string path = serve::JournalEntryPath(options.journal_dir, 0);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<int64_t>(f.tellg());
    ASSERT_GT(size, 0);
    f.seekg(size / 2);
    char byte = 0;
    f.read(&byte, 1);
    byte ^= 0x40;
    f.seekp(size / 2);
    f.write(&byte, 1);
  }
  auto reloaded = serve::ServingEngine::FromCheckpoint(
      SmallConfig(), kPredictorHidden, &fx.graph, fx.checkpoint_path,
      options);
  ASSERT_FALSE(reloaded.ok());
  EXPECT_EQ(reloaded.status().code(), StatusCode::kIoError)
      << reloaded.status().ToString();
}

}  // namespace
}  // namespace cpdg
