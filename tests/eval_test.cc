#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "eval/evaluators.h"

namespace cpdg::eval {
namespace {

TEST(RocAucTest, PerfectSeparation) {
  std::vector<ScoredLabel> s = {{0.9, 1}, {0.8, 1}, {0.2, 0}, {0.1, 0}};
  EXPECT_DOUBLE_EQ(RocAuc(s), 1.0);
}

TEST(RocAucTest, PerfectInversion) {
  std::vector<ScoredLabel> s = {{0.1, 1}, {0.2, 1}, {0.8, 0}, {0.9, 0}};
  EXPECT_DOUBLE_EQ(RocAuc(s), 0.0);
}

TEST(RocAucTest, RandomScoresGiveHalf) {
  std::vector<ScoredLabel> s = {{0.5, 1}, {0.5, 0}, {0.5, 1}, {0.5, 0}};
  EXPECT_DOUBLE_EQ(RocAuc(s), 0.5);  // all tied: half credit
}

TEST(RocAucTest, KnownPartialValue) {
  // Positives at ranks {4, 2} among 4 samples: AUC = 3/4.
  std::vector<ScoredLabel> s = {{0.9, 1}, {0.7, 0}, {0.5, 1}, {0.3, 0}};
  EXPECT_DOUBLE_EQ(RocAuc(s), 0.75);
}

TEST(RocAucTest, DegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(RocAuc({{0.5, 1}, {0.9, 1}}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({}), 0.5);
}

TEST(AveragePrecisionTest, PerfectRanking) {
  std::vector<ScoredLabel> s = {{0.9, 1}, {0.8, 1}, {0.2, 0}};
  EXPECT_DOUBLE_EQ(AveragePrecision(s), 1.0);
}

TEST(AveragePrecisionTest, KnownValue) {
  // Ranking: pos, neg, pos => AP = (1/1 + 2/3) / 2 = 5/6.
  std::vector<ScoredLabel> s = {{0.9, 1}, {0.8, 0}, {0.7, 1}};
  EXPECT_NEAR(AveragePrecision(s), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecisionTest, NoPositives) {
  EXPECT_DOUBLE_EQ(AveragePrecision({{0.3, 0}}), 0.0);
}

TEST(AccuracyTest, ThresholdAtHalf) {
  std::vector<ScoredLabel> s = {{0.9, 1}, {0.4, 0}, {0.6, 0}, {0.2, 1}};
  EXPECT_DOUBLE_EQ(AccuracyAtHalf(s), 0.5);
}

TEST(CollectNodesTest, GathersBothEndpoints) {
  std::vector<graph::Event> events = {{1, 5, 0.1}, {2, 5, 0.2}};
  auto nodes = CollectNodes(events);
  EXPECT_EQ(nodes.size(), 3u);
  EXPECT_TRUE(nodes.count(1) && nodes.count(2) && nodes.count(5));
}

}  // namespace
}  // namespace cpdg::eval
