#ifndef CPDG_TESTS_GRADCHECK_H_
#define CPDG_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace cpdg::testing {

/// Builds a scalar loss from the given leaf inputs.
using LossFn = std::function<tensor::Tensor(std::vector<tensor::Tensor>&)>;

/// \brief Central-difference gradient check: compares the autograd
/// gradient of `loss_fn` w.r.t. every element of every input against a
/// numerical estimate. Inputs must be leaf tensors with requires_grad.
inline void ExpectGradientsMatch(std::vector<tensor::Tensor> inputs,
                                 const LossFn& loss_fn, float eps = 1e-3f,
                                 float tol = 2e-2f) {
  // Analytic gradients.
  for (auto& t : inputs) t.ZeroGrad();
  tensor::Tensor loss = loss_fn(inputs);
  ASSERT_EQ(loss.rows(), 1);
  ASSERT_EQ(loss.cols(), 1);
  loss.Backward();

  for (size_t which = 0; which < inputs.size(); ++which) {
    tensor::Tensor& input = inputs[which];
    const float* analytic = input.grad();
    for (int64_t i = 0; i < input.size(); ++i) {
      float original = input.data()[i];
      input.data()[i] = original + eps;
      float plus = loss_fn(inputs).item();
      input.data()[i] = original - eps;
      float minus = loss_fn(inputs).item();
      input.data()[i] = original;
      float numeric = (plus - minus) / (2.0f * eps);
      float a = analytic[i];
      float denom = std::max({1.0f, std::fabs(a), std::fabs(numeric)});
      EXPECT_NEAR(a / denom, numeric / denom, tol)
          << "input " << which << " element " << i << " analytic=" << a
          << " numeric=" << numeric;
    }
  }
}

}  // namespace cpdg::testing

#endif  // CPDG_TESTS_GRADCHECK_H_
