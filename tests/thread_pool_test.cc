#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace cpdg::util {
namespace {

using ChunkList = std::vector<std::pair<int64_t, int64_t>>;

ChunkList CollectChunks(ThreadPool* pool, int64_t begin, int64_t end,
                        int64_t grain) {
  std::mutex mu;
  ChunkList chunks;
  pool->ParallelFor(begin, end, grain, [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lk(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  return chunks;
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  // Each element belongs to exactly one chunk, and chunks own disjoint
  // ranges, so plain int increments are race-free by construction.
  std::vector<int> counts(1000, 0);
  pool.ParallelFor(0, 1000, 7, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++counts[static_cast<size_t>(i)];
  });
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPoolTest, ChunkBoundariesDependOnlyOnGrain) {
  ChunkList expected;
  for (int64_t lo = 3; lo < 100; lo += 7) {
    expected.emplace_back(lo, std::min<int64_t>(100, lo + 7));
  }
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(CollectChunks(&pool, 3, 100, 7), expected)
        << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, SerialFallbackIteratesChunksInOrder) {
  ThreadPool pool(1);
  ChunkList chunks;
  pool.ParallelFor(0, 20, 6, [&](int64_t lo, int64_t hi) {
    chunks.emplace_back(lo, hi);
  });
  EXPECT_EQ(chunks, (ChunkList{{0, 6}, {6, 12}, {12, 18}, {18, 20}}));
}

TEST(ThreadPoolTest, EmptyRangeInvokesNothing) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<int64_t> inner_sums(8, 0);
  pool.ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t slot = lo; slot < hi; ++slot) {
      // The nested call degrades to the serial fallback on this worker;
      // its chunks still cover the range exactly once.
      pool.ParallelFor(0, 100, 9, [&, slot](int64_t ilo, int64_t ihi) {
        for (int64_t i = ilo; i < ihi; ++i) {
          inner_sums[static_cast<size_t>(slot)] += i;
        }
      });
    }
  });
  for (int64_t s : inner_sums) EXPECT_EQ(s, 99 * 100 / 2);
}

TEST(ThreadPoolTest, PerChunkReductionMergesIdenticallyAcrossThreadCounts) {
  // The canonical deterministic-reduction pattern: accumulate per chunk
  // (chunk id = lo / grain), then merge in chunk order. Since chunk
  // boundaries are thread-count independent, the merged float result must
  // be bitwise identical for every pool size.
  constexpr int64_t kN = 10000;
  constexpr int64_t kGrain = 128;
  auto reduce = [&](int threads) {
    ThreadPool pool(threads);
    std::vector<float> partial((kN + kGrain - 1) / kGrain, 0.0f);
    pool.ParallelFor(0, kN, kGrain, [&](int64_t lo, int64_t hi) {
      float acc = 0.0f;
      for (int64_t i = lo; i < hi; ++i) {
        acc += 1.0f / (1.0f + static_cast<float>(i));
      }
      partial[static_cast<size_t>(lo / kGrain)] = acc;
    });
    float total = 0.0f;
    for (float p : partial) total += p;
    return total;
  };
  float serial = reduce(1);
  for (int threads : {2, 4, 8}) {
    float parallel = reduce(threads);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, DefaultNumThreadsHonorsEnvKnob) {
  const char* old = std::getenv("CPDG_NUM_THREADS");
  std::string saved = old != nullptr ? old : "";
  setenv("CPDG_NUM_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 3);
  setenv("CPDG_NUM_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 1);
  unsetenv("CPDG_NUM_THREADS");
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
  if (old != nullptr) setenv("CPDG_NUM_THREADS", saved.c_str(), 1);
}

TEST(ThreadPoolTest, GlobalPoolCanBeResized) {
  ThreadPool::SetGlobalNumThreads(2);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 2);
  std::vector<int> counts(64, 0);
  ThreadPool::Global().ParallelFor(0, 64, 4, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++counts[static_cast<size_t>(i)];
  });
  for (int c : counts) EXPECT_EQ(c, 1);
  ThreadPool::SetGlobalNumThreads(ThreadPool::DefaultNumThreads());
}

}  // namespace
}  // namespace cpdg::util
