#include "tensor/nn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "tensor/losses.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace cpdg::tensor {
namespace {

TEST(LinearTest, ShapeAndParameterCount) {
  Rng rng(1);
  Linear layer(4, 3, &rng);
  EXPECT_EQ(layer.ParameterCount(), 4 * 3 + 3);
  Tensor x = Tensor::Ones(2, 4);
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 3);
}

TEST(LinearTest, NoBiasOption) {
  Rng rng(2);
  Linear layer(4, 3, &rng, /*bias=*/false);
  EXPECT_EQ(layer.ParameterCount(), 12);
}

TEST(MlpTest, HiddenActivationApplied) {
  Rng rng(3);
  Mlp mlp({2, 8, 1}, &rng, Activation::kRelu);
  Tensor x = Tensor::Ones(5, 2);
  Tensor y = mlp.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 1);
  EXPECT_EQ(mlp.layers().size(), 2u);
}

TEST(MlpTest, LearnsXor) {
  // XOR is the classic non-linear sanity check for the whole stack:
  // forward, backward, optimizer.
  Rng rng(4);
  Mlp mlp({2, 8, 1}, &rng, Activation::kTanh);
  Adam opt(mlp.Parameters(), 0.05f);
  Tensor x = Tensor::FromVector(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor y = Tensor::FromVector(4, 1, {0, 1, 1, 0});
  float final_loss = 1.0f;
  for (int step = 0; step < 400; ++step) {
    Tensor loss = BceWithLogitsLoss(mlp.Forward(x), y);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 0.1f);
  Tensor pred = Sigmoid(mlp.Forward(x));
  EXPECT_LT(pred.at(0, 0), 0.5f);
  EXPECT_GT(pred.at(1, 0), 0.5f);
  EXPECT_GT(pred.at(2, 0), 0.5f);
  EXPECT_LT(pred.at(3, 0), 0.5f);
}

TEST(GruCellTest, ShapeAndGradients) {
  Rng rng(5);
  GruCell gru(3, 4, &rng);
  Tensor x = Tensor::RandomUniform(2, 3, 1.0f, &rng, true);
  Tensor h = Tensor::RandomUniform(2, 4, 1.0f, &rng, true);
  Tensor h2 = gru.Forward(x, h);
  EXPECT_EQ(h2.rows(), 2);
  EXPECT_EQ(h2.cols(), 4);

  cpdg::testing::ExpectGradientsMatch(
      {x, h}, [&gru](std::vector<Tensor>& in) {
        return Mean(Square(gru.Forward(in[0], in[1])));
      });
}

TEST(GruCellTest, GateBehaviorBounded) {
  // GRU output is a convex combination of h and tanh candidate, so it must
  // stay in (-1, 1) when h does.
  Rng rng(6);
  GruCell gru(2, 3, &rng);
  Tensor x = Tensor::RandomUniform(4, 2, 5.0f, &rng);
  Tensor h = Tensor::RandomUniform(4, 3, 0.9f, &rng);
  Tensor h2 = gru.Forward(x, h);
  for (int64_t i = 0; i < h2.size(); ++i) {
    EXPECT_LT(std::fabs(h2.data()[i]), 1.0f);
  }
}

TEST(RnnCellTest, ShapeAndRange) {
  Rng rng(7);
  RnnCell rnn(3, 4, &rng);
  Tensor x = Tensor::RandomUniform(2, 3, 2.0f, &rng);
  Tensor h = Tensor::Zeros(2, 4);
  Tensor h2 = rnn.Forward(x, h);
  EXPECT_EQ(h2.cols(), 4);
  for (int64_t i = 0; i < h2.size(); ++i) {
    EXPECT_LE(std::fabs(h2.data()[i]), 1.0f);
  }
}

TEST(TimeEncoderTest, OutputInCosineRange) {
  Rng rng(8);
  TimeEncoder enc(6, &rng);
  Tensor phi = enc.Forward({0.0, 0.5, 100.0, 12345.0});
  EXPECT_EQ(phi.rows(), 4);
  EXPECT_EQ(phi.cols(), 6);
  for (int64_t i = 0; i < phi.size(); ++i) {
    EXPECT_LE(std::fabs(phi.data()[i]), 1.0f + 1e-5f);
  }
}

TEST(TimeEncoderTest, ZeroDeltaGivesCosPhase) {
  Rng rng(9);
  TimeEncoder enc(4, &rng);
  Tensor phi = enc.Forward({0.0});
  // cos(0 * w + 0) = 1 for the initial zero phases.
  for (int64_t c = 0; c < 4; ++c) EXPECT_NEAR(phi.at(0, c), 1.0f, 1e-5f);
}

TEST(TimeEncoderTest, DistinguishesTimescales) {
  Rng rng(10);
  TimeEncoder enc(8, &rng);
  Tensor a = enc.Forward({1.0});
  Tensor b = enc.Forward({1000.0});
  double diff = 0.0;
  for (int64_t c = 0; c < 8; ++c) {
    diff += std::fabs(a.at(0, c) - b.at(0, c));
  }
  EXPECT_GT(diff, 0.1);
}

TEST(GroupedAttentionLayerTest, ShapesAndGrads) {
  Rng rng(11);
  GroupedAttentionLayer layer(3, 5, 4, 6, &rng);
  Tensor q = Tensor::RandomUniform(2, 3, 1.0f, &rng, true);
  Tensor c = Tensor::RandomUniform(4, 5, 1.0f, &rng, true);
  std::vector<uint8_t> valid = {1, 1, 1, 0};
  Tensor out = layer.Forward(q, c, 2, valid);
  EXPECT_EQ(out.rows(), 2);
  EXPECT_EQ(out.cols(), 6);

  cpdg::testing::ExpectGradientsMatch(
      {q, c}, [&layer, &valid](std::vector<Tensor>& in) {
        return Mean(Square(layer.Forward(in[0], in[1], 2, valid)));
      });
}

TEST(ModuleTest, CopyParametersFrom) {
  Rng rng1(12), rng2(13);
  Mlp a({3, 4, 2}, &rng1);
  Mlp b({3, 4, 2}, &rng2);
  b.CopyParametersFrom(a);
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i].size(); ++j) {
      EXPECT_EQ(pa[i].data()[j], pb[i].data()[j]);
    }
  }
}

TEST(OptimTest, SgdDescendsQuadratic) {
  Tensor x = Tensor::Full(1, 1, 10.0f, true);
  Sgd opt({x}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    Tensor loss = Square(x);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.item(), 0.0f, 1e-3f);
}

TEST(OptimTest, SgdMomentumDescends) {
  Tensor x = Tensor::Full(1, 1, 10.0f, true);
  Sgd opt({x}, 0.02f, 0.9f);
  for (int i = 0; i < 200; ++i) {
    Tensor loss = Square(x);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.item(), 0.0f, 1e-2f);
}

TEST(OptimTest, AdamDescendsIllConditioned) {
  // f(x, y) = x^2 + 100 y^2: Adam should handle the conditioning.
  Tensor x = Tensor::Full(1, 1, 3.0f, true);
  Tensor y = Tensor::Full(1, 1, 3.0f, true);
  Adam opt({x, y}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    Tensor loss = Add(Square(x), MulScalar(Square(y), 100.0f));
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.item(), 0.0f, 1e-2f);
  EXPECT_NEAR(y.item(), 0.0f, 1e-2f);
}

TEST(OptimTest, WeightDecayShrinksWeights) {
  Tensor x = Tensor::Full(1, 1, 1.0f, true);
  // Zero-gradient loss; decay alone should shrink x.
  Sgd opt({x}, 0.1f, 0.0f, 0.5f);
  for (int i = 0; i < 10; ++i) {
    Tensor loss = MulScalar(x, 0.0f);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(x.item(), 0.7f);
}

TEST(OptimTest, ClipGradNormScales) {
  Tensor x = Tensor::Full(1, 4, 0.0f, true);
  float* g = x.grad();
  for (int i = 0; i < 4; ++i) g[i] = 3.0f;  // norm = 6
  float norm = ClipGradNorm({x}, 1.0f);
  EXPECT_NEAR(norm, 6.0f, 1e-5f);
  double clipped = 0.0;
  for (int i = 0; i < 4; ++i) clipped += x.grad()[i] * x.grad()[i];
  EXPECT_NEAR(std::sqrt(clipped), 1.0f, 1e-4f);
}

TEST(OptimTest, ClipGradNormNoopBelowMax) {
  Tensor x = Tensor::Full(1, 1, 0.0f, true);
  x.grad()[0] = 0.5f;
  ClipGradNorm({x}, 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[0], 0.5f);
}

}  // namespace
}  // namespace cpdg::tensor
