#include "data/generators.h"

#include <set>

#include <gtest/gtest.h>

#include "data/transfer.h"

namespace cpdg::data {
namespace {

UniverseSpec TinySpec(bool labeled = false) {
  UniverseSpec spec;
  spec.num_users = 50;
  FieldSpec a;
  a.name = "A";
  a.num_items = 40;
  a.num_communities = 4;
  a.num_events_early = 600;
  a.num_events_late = 400;
  a.labeled = labeled;
  FieldSpec b = a;
  b.name = "B";
  FieldSpec pre = a;
  pre.name = "Pre";
  spec.fields = {a, b, pre};
  return spec;
}

TEST(GeneratorTest, NodeLayoutIsDisjoint) {
  DynamicGraphUniverse u(TinySpec(), 1);
  EXPECT_EQ(u.num_nodes(), 50 + 3 * 40);
  EXPECT_EQ(u.ItemBase(0), 50);
  EXPECT_EQ(u.ItemBase(1), 90);
  EXPECT_EQ(u.ItemBase(2), 130);
  auto pool0 = u.ItemPool(0);
  auto pool1 = u.ItemPool(1);
  std::set<graph::NodeId> s0(pool0.begin(), pool0.end());
  for (auto v : pool1) EXPECT_EQ(s0.count(v), 0u);
}

TEST(GeneratorTest, EventsRespectFieldAndWindow) {
  DynamicGraphUniverse u(TinySpec(), 2);
  auto events = u.GenerateEvents(1, 0.2, 0.5, 300);
  EXPECT_EQ(events.size(), 300u);
  for (const auto& e : events) {
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, 50);        // sources are users
    EXPECT_GE(e.dst, 90);        // field 1 items
    EXPECT_LT(e.dst, 130);
    EXPECT_GE(e.time, 0.2);
    EXPECT_LT(e.time, 0.5);
  }
}

TEST(GeneratorTest, EventsAreChronological) {
  DynamicGraphUniverse u(TinySpec(), 3);
  auto events = u.EarlyEvents(0);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  DynamicGraphUniverse u1(TinySpec(), 7);
  DynamicGraphUniverse u2(TinySpec(), 7);
  auto e1 = u1.EarlyEvents(0);
  auto e2 = u2.EarlyEvents(0);
  ASSERT_EQ(e1.size(), e2.size());
  for (size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].src, e2[i].src);
    EXPECT_EQ(e1[i].dst, e2[i].dst);
    EXPECT_EQ(e1[i].time, e2[i].time);
  }
}

/// Test sink buffering streamed chunks, with optional failure injection.
class VectorSink : public EventSink {
 public:
  explicit VectorSink(int64_t fail_after_appends = -1)
      : fail_after_(fail_after_appends) {}

  Status Append(const Event* events, int64_t count) override {
    if (fail_after_ >= 0 && appends_ >= fail_after_) {
      return Status::Internal("sink full");
    }
    ++appends_;
    events_.insert(events_.end(), events, events + count);
    return Status::OK();
  }

  const std::vector<Event>& events() const { return events_; }
  int64_t appends() const { return appends_; }

 private:
  std::vector<Event> events_;
  int64_t appends_ = 0;
  int64_t fail_after_;
};

TEST(GeneratorTest, StreamEventsMatchesGenerateEventsExactly) {
  DynamicGraphUniverse u(TinySpec(), 21);
  std::vector<Event> bulk = u.GenerateEvents(0, 0.1, 0.5, 500);
  // The streamed form must emit the identical sequence (same RNG stream)
  // for any chunking.
  for (int64_t chunk : {1, 7, 64, 500, 1000}) {
    VectorSink sink;
    ASSERT_TRUE(u.StreamEvents(0, 0.1, 0.5, 500, chunk, &sink).ok());
    ASSERT_EQ(sink.events().size(), bulk.size()) << "chunk " << chunk;
    for (size_t i = 0; i < bulk.size(); ++i) {
      EXPECT_EQ(sink.events()[i].src, bulk[i].src);
      EXPECT_EQ(sink.events()[i].dst, bulk[i].dst);
      EXPECT_EQ(sink.events()[i].time, bulk[i].time);
      EXPECT_EQ(sink.events()[i].label, bulk[i].label);
    }
  }
}

TEST(GeneratorTest, StreamEventsPropagatesSinkFailure) {
  DynamicGraphUniverse u(TinySpec(), 21);
  VectorSink sink(/*fail_after_appends=*/2);
  auto status = u.StreamEvents(0, 0.1, 0.5, 500, 100, &sink);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(sink.appends(), 2);  // aborted at the failing chunk
}

TEST(ScaleStressTest, StreamIsChronologicalDeterministicAndInRange) {
  ScaleStressSpec spec;
  spec.num_users = 200;
  spec.num_items = 100;
  spec.num_events = 5000;
  VectorSink a, b;
  ASSERT_TRUE(StreamScaleStressEvents(spec, 5, 512, &a).ok());
  ASSERT_TRUE(StreamScaleStressEvents(spec, 5, 999, &b).ok());
  ASSERT_EQ(a.events().size(), 5000u);
  // Chunk size must not affect the stream.
  ASSERT_EQ(b.events().size(), a.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    const Event& e = a.events()[i];
    EXPECT_EQ(e.src, b.events()[i].src);
    EXPECT_EQ(e.dst, b.events()[i].dst);
    EXPECT_EQ(e.time, b.events()[i].time);
    // Bipartite layout: users then items, strictly increasing times
    // (exactly what the storage event-log builder requires).
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, spec.num_users);
    EXPECT_GE(e.dst, spec.num_users);
    EXPECT_LT(e.dst, spec.num_users + spec.num_items);
    if (i > 0) {
      EXPECT_GT(e.time, a.events()[i - 1].time);
    }
  }
}

TEST(ScaleStressTest, PopularitySkewIsVisible) {
  ScaleStressSpec spec;
  spec.num_users = 200;
  spec.num_items = 100;
  spec.num_events = 5000;
  VectorSink sink;
  ASSERT_TRUE(StreamScaleStressEvents(spec, 9, 1024, &sink).ok());
  // With skew 3.0 the bottom decile of item ids absorbs several times its
  // uniform share (10% of 5000 = 500) of all interactions.
  int64_t low_decile = 0;
  for (const Event& e : sink.events()) {
    if (e.dst - spec.num_users < spec.num_items / 10) ++low_decile;
  }
  EXPECT_GT(low_decile, 2000);
}

TEST(GeneratorTest, SeedsChangeTheGraph) {
  DynamicGraphUniverse u1(TinySpec(), 7);
  DynamicGraphUniverse u2(TinySpec(), 8);
  auto e1 = u1.EarlyEvents(0);
  auto e2 = u2.EarlyEvents(0);
  int diffs = 0;
  for (size_t i = 0; i < std::min(e1.size(), e2.size()); ++i) {
    if (e1[i].dst != e2[i].dst) ++diffs;
  }
  EXPECT_GT(diffs, 50);
}

TEST(GeneratorTest, CommunityStructureIsVisible) {
  // With strong community preference, a user's items should concentrate in
  // its long-term community far above the uniform baseline.
  UniverseSpec spec = TinySpec();
  spec.fields[0].community_strength = 0.95;
  spec.fields[0].short_term_prob = 0.0;
  spec.fields[0].repeat_prob = 0.0;
  spec.fields[0].num_events_early = 4000;
  DynamicGraphUniverse u(spec, 9);
  auto events = u.EarlyEvents(0);
  int64_t in_community = 0, total = 0;
  for (const auto& e : events) {
    // Re-derive the item's community membership via the pools.
    int64_t uc = u.UserCommunity(e.src, 0);
    (void)uc;
    ++total;
  }
  // Indirect check: the number of *distinct* items per user should be far
  // below the field size (preference concentration).
  std::map<graph::NodeId, std::set<graph::NodeId>> items_per_user;
  for (const auto& e : events) items_per_user[e.src].insert(e.dst);
  double mean_distinct = 0.0;
  for (auto& [user, items] : items_per_user) {
    mean_distinct += static_cast<double>(items.size());
  }
  mean_distinct /= static_cast<double>(items_per_user.size());
  EXPECT_LT(mean_distinct, 25.0);
  (void)in_community;
  EXPECT_GT(total, 0);
}

TEST(GeneratorTest, ShortTermInterestReRolls) {
  DynamicGraphUniverse u(TinySpec(), 11);
  // Across two distant windows the transient interest should differ for
  // most users.
  int changed = 0;
  for (graph::NodeId user = 0; user < 50; ++user) {
    if (u.UserShortTermCommunity(user, 0, 0.01) !=
        u.UserShortTermCommunity(user, 0, 0.91)) {
      ++changed;
    }
  }
  EXPECT_GT(changed, 25);
  // Within one window it must be stable.
  EXPECT_EQ(u.UserShortTermCommunity(3, 0, 0.011),
            u.UserShortTermCommunity(3, 0, 0.012));
}

TEST(GeneratorTest, LabeledFieldEmitsLabels) {
  UniverseSpec spec = MakeWikipediaLike();
  spec.fields[0].num_events_early = 1500;
  spec.fields[0].num_events_late = 800;
  DynamicGraphUniverse u(spec, 13);
  auto events = u.EarlyEvents(0);
  int64_t pos = 0, neg = 0;
  for (const auto& e : events) {
    ASSERT_GE(e.label, 0);
    if (e.label == 1) {
      ++pos;
    } else {
      ++neg;
    }
  }
  EXPECT_GT(pos, 10);       // some flipped windows
  EXPECT_GT(neg, pos);      // but flips are the minority
}

TEST(GeneratorTest, UnlabeledFieldEmitsMinusOne) {
  DynamicGraphUniverse u(TinySpec(false), 15);
  for (const auto& e : u.EarlyEvents(0)) EXPECT_EQ(e.label, -1);
}

TEST(GeneratorTest, FlipTimesMatchLabels) {
  UniverseSpec spec = MakeRedditLike();
  spec.fields[0].num_events_early = 2000;
  DynamicGraphUniverse u(spec, 17);
  auto events = u.EarlyEvents(0);
  for (const auto& e : events) {
    double flip = u.UserFlipTime(e.src, 0);
    bool in_window = e.time >= flip &&
                     e.time < flip + spec.fields[0].label_window;
    EXPECT_EQ(e.label == 1, in_window);
  }
}

TEST(ProfileTest, AllProfilesConstruct) {
  for (auto spec : {MakeAmazonLike(), MakeGowallaLike(), MakeMeituanLike(),
                    MakeWikipediaLike(), MakeMoocLike(), MakeRedditLike()}) {
    DynamicGraphUniverse u(spec, 1);
    EXPECT_GT(u.num_nodes(), 0);
  }
}

TEST(TransferTest, TimeTransferUsesSameFieldEarlyEvents) {
  TransferBenchmarkBuilder builder(TinySpec(), 21);
  TransferDataset ds = builder.Build(TransferSetting::kTime, 0);
  EXPECT_EQ(ds.name, "A/time");
  // All pre-training events come from field 0's item block and precede the
  // split time.
  for (const auto& e : ds.pretrain_graph.events()) {
    EXPECT_GE(e.dst, 50);
    EXPECT_LT(e.dst, 90);
    EXPECT_LT(e.time, 0.6);
  }
  for (const auto& e : ds.downstream_train_graph.events()) {
    EXPECT_GE(e.time, 0.6);
  }
}

TEST(TransferTest, FieldTransferUsesPretrainFieldLateEvents) {
  TransferBenchmarkBuilder builder(TinySpec(), 21);
  TransferDataset ds = builder.Build(TransferSetting::kField, 1);
  for (const auto& e : ds.pretrain_graph.events()) {
    EXPECT_GE(e.dst, 130);  // pre-training field items
    EXPECT_GE(e.time, 0.6);
  }
}

TEST(TransferTest, TimeFieldTransferUsesPretrainFieldEarlyEvents) {
  TransferBenchmarkBuilder builder(TinySpec(), 21);
  TransferDataset ds = builder.Build(TransferSetting::kTimeField, 1);
  for (const auto& e : ds.pretrain_graph.events()) {
    EXPECT_GE(e.dst, 130);
    EXPECT_LT(e.time, 0.6);
  }
}

TEST(TransferTest, DownstreamSplitIsChronological) {
  TransferBenchmarkBuilder builder(TinySpec(), 23);
  TransferDataset ds = builder.Build(TransferSetting::kTime, 0);
  ASSERT_FALSE(ds.downstream_val_events.empty());
  ASSERT_FALSE(ds.downstream_test_events.empty());
  double train_last = ds.downstream_train_graph.events().back().time;
  EXPECT_LE(train_last, ds.downstream_val_events.front().time);
  EXPECT_LE(ds.downstream_val_events.back().time,
            ds.downstream_test_events.front().time);
  // 70/15/15 proportions (within rounding).
  int64_t total = ds.downstream_train_graph.num_events() +
                  static_cast<int64_t>(ds.downstream_val_events.size()) +
                  static_cast<int64_t>(ds.downstream_test_events.size());
  EXPECT_EQ(total, 400);
  EXPECT_NEAR(
      static_cast<double>(ds.downstream_train_graph.num_events()) / total,
      0.7, 0.02);
}

TEST(TransferTest, SingleFieldSplit) {
  UniverseSpec spec = MakeMeituanLike();
  spec.fields[0].num_events_early = 800;
  spec.fields[0].num_events_late = 600;
  TransferBenchmarkBuilder builder(spec, 25);
  TransferDataset ds = builder.BuildSingleField();
  EXPECT_EQ(ds.pretrain_graph.num_events(), 800);
  EXPECT_EQ(ds.downstream_train_graph.num_events(), 300);
  EXPECT_EQ(ds.downstream_val_events.size(), 150u);
  EXPECT_EQ(ds.downstream_test_events.size(), 150u);
}

TEST(TransferTest, NegativePoolsMatchFields) {
  TransferBenchmarkBuilder builder(TinySpec(), 27);
  TransferDataset ds = builder.Build(TransferSetting::kField, 0);
  // Downstream pool: field 0 items; pre-train pool: field 2 items.
  EXPECT_EQ(ds.downstream_negative_pool.front(), 50);
  EXPECT_EQ(ds.pretrain_negative_pool.front(), 130);
}

}  // namespace
}  // namespace cpdg::data
