// Focused tests for DgnnEncoder internals added alongside the node-feature
// extension: feature table plumbing, gradient reach, and embedding
// determinism guarantees.

#include <cmath>

#include <gtest/gtest.h>

#include "graph/temporal_graph.h"
#include "dgnn/encoder.h"
#include "tensor/losses.h"
#include "tensor/ops.h"

namespace cpdg::dgnn {
namespace {

using graph::Event;
using graph::TemporalGraph;

TemporalGraph TwoCommunityGraph() {
  // Users 0-4 interact only with item 10; users 5-9 only with items 11-14.
  std::vector<Event> events;
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    double t = static_cast<double>(i) / 300.0;
    bool left = rng.NextBernoulli(0.5);
    NodeId user = left ? static_cast<NodeId>(rng.NextBounded(5))
                       : 5 + static_cast<NodeId>(rng.NextBounded(5));
    NodeId item = left ? 10 : 11 + static_cast<NodeId>(rng.NextBounded(4));
    events.push_back({user, item, t});
  }
  return TemporalGraph::Create(15, events).ValueOrDie();
}

EncoderConfig SmallConfig(EncoderType type, int64_t nodes) {
  EncoderConfig c = EncoderConfig::Preset(type, nodes);
  c.memory_dim = 8;
  c.embed_dim = 8;
  c.time_dim = 4;
  c.num_neighbors = 3;
  return c;
}

TEST(NodeFeatureTest, TableHasPerNodeRows) {
  TemporalGraph g = TwoCommunityGraph();
  Rng rng(2);
  DgnnEncoder encoder(SmallConfig(EncoderType::kTgn, g.num_nodes()), &g,
                      &rng);
  tensor::Tensor f = encoder.NodeFeatures({0, 7, 14});
  EXPECT_EQ(f.rows(), 3);
  EXPECT_EQ(f.cols(), 8);
  // Different nodes get different random rows.
  double diff = 0.0;
  for (int64_t c = 0; c < 8; ++c) diff += std::fabs(f.at(0, c) - f.at(1, c));
  EXPECT_GT(diff, 1e-4);
  EXPECT_TRUE(f.requires_grad());
}

class NodeFeatureGradTest : public ::testing::TestWithParam<EncoderType> {};

TEST_P(NodeFeatureGradTest, GradientsReachFeatureTable) {
  TemporalGraph g = TwoCommunityGraph();
  Rng rng(3);
  DgnnEncoder encoder(SmallConfig(GetParam(), g.num_nodes()), &g, &rng);

  // Enqueue messages so the flush path (updater + message function) runs.
  encoder.BeginBatch();
  encoder.CommitBatch(
      {{0, 10, 0.5}, {5, 11, 0.55}, {1, 10, 0.6}});
  encoder.BeginBatch();
  tensor::Tensor z = encoder.ComputeEmbeddings({0, 5, 1}, {0.7, 0.7, 0.7});
  tensor::Tensor loss = tensor::Mean(tensor::Square(z));
  encoder.ZeroGrad();
  loss.Backward();

  // At least the queried nodes' feature rows must receive gradient.
  tensor::Tensor features = encoder.NodeFeatures({0});
  // Access the raw table through parameters: pick the [num_nodes, 8] one.
  bool found_table_grad = false;
  for (auto& p : encoder.Parameters()) {
    if (p.rows() == g.num_nodes() && p.cols() == 8 && p.has_grad()) {
      double sum = 0.0;
      for (int64_t i = 0; i < p.size(); ++i) {
        sum += std::fabs(p.grad()[i]);
      }
      if (sum > 0.0) found_table_grad = true;
    }
  }
  EXPECT_TRUE(found_table_grad);
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, NodeFeatureGradTest,
                         ::testing::Values(EncoderType::kJodie,
                                           EncoderType::kDyRep,
                                           EncoderType::kTgn),
                         [](const auto& info) {
                           return EncoderTypeName(info.param);
                         });

TEST(NodeFeatureTest, EmbeddingsDistinguishIsomorphicNodes) {
  // Without node features, users with isomorphic interaction patterns are
  // indistinguishable; the feature table must break the tie even before
  // any training.
  TemporalGraph g = TwoCommunityGraph();
  Rng rng(5);
  DgnnEncoder encoder(SmallConfig(EncoderType::kTgn, g.num_nodes()), &g,
                      &rng);
  encoder.BeginBatch();
  tensor::Tensor z = encoder.ComputeEmbeddings({0, 1}, {0.9, 0.9});
  double diff = 0.0;
  for (int64_t c = 0; c < z.cols(); ++c) {
    diff += std::fabs(z.at(0, c) - z.at(1, c));
  }
  EXPECT_GT(diff, 1e-5);
}

TEST(EncoderDeterminismTest, SameSeedSameEmbeddings) {
  TemporalGraph g = TwoCommunityGraph();
  Rng rng1(7), rng2(7);
  EncoderConfig config = SmallConfig(EncoderType::kTgn, g.num_nodes());
  DgnnEncoder e1(config, &g, &rng1);
  DgnnEncoder e2(config, &g, &rng2);
  e1.BeginBatch();
  e2.BeginBatch();
  tensor::Tensor z1 = e1.ComputeEmbeddings({0, 6}, {0.8, 0.8});
  tensor::Tensor z2 = e2.ComputeEmbeddings({0, 6}, {0.8, 0.8});
  for (int64_t i = 0; i < z1.size(); ++i) {
    EXPECT_FLOAT_EQ(z1.data()[i], z2.data()[i]);
  }
}

TEST(EncoderDeterminismTest, CacheIsStableWithinBatch) {
  // Two ComputeUpdatedStates calls for the same node within one batch must
  // return the same tensor values (the flush is cached, not recomputed).
  TemporalGraph g = TwoCommunityGraph();
  Rng rng(9);
  DgnnEncoder encoder(SmallConfig(EncoderType::kTgn, g.num_nodes()), &g,
                      &rng);
  encoder.BeginBatch();
  encoder.CommitBatch({{0, 10, 0.5}});
  encoder.BeginBatch();
  tensor::Tensor a = encoder.ComputeUpdatedStates({0});
  tensor::Tensor b = encoder.ComputeUpdatedStates({0});
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(EncoderDeterminismTest, MeanAggregatorConsumesAllPending) {
  TemporalGraph g = TwoCommunityGraph();
  Rng rng(11);
  EncoderConfig config = SmallConfig(EncoderType::kTgn, g.num_nodes());
  config.aggregator = AggregatorType::kMean;
  DgnnEncoder encoder(config, &g, &rng);
  encoder.BeginBatch();
  encoder.CommitBatch({{0, 10, 0.5}, {0, 11, 0.52}, {0, 12, 0.54}});
  EXPECT_EQ(encoder.memory().Pending(0).size(), 3u);
  encoder.BeginBatch();
  tensor::Tensor s = encoder.ComputeUpdatedStates({0});
  encoder.CommitBatch({});
  EXPECT_FALSE(encoder.memory().HasPending(0));
  EXPECT_GT(encoder.memory().StateNorm(), 0.0);
}

}  // namespace
}  // namespace cpdg::dgnn
