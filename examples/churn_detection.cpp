// Dynamic node classification scenario: detect users whose state has
// flipped ("banned" / "drop-out") from their recent interaction behaviour,
// the Wikipedia/MOOC/Reddit task of the paper (Table VII).
//
// The pipeline streams the downstream event log through a CPDG-pre-trained
// encoder and classifies each labeled interaction's source node.

#include <cstdio>
#include <iostream>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "util/table_printer.h"

int main() {
  using namespace cpdg;

  bench::ExperimentScale scale;
  scale.num_seeds = 1;
  scale.pretrain_epochs = 3;
  scale.finetune_epochs = 3;

  data::UniverseSpec spec = bench::ScaleSpec(data::MakeWikipediaLike(), 1.0);
  data::TransferBenchmarkBuilder builder(spec, /*seed=*/20240701);
  data::TransferDataset ds = builder.BuildSingleField();

  std::printf("Churn detection on a Wikipedia-like labeled dynamic graph\n");
  std::printf("pre-train:  %s\n", ds.pretrain_graph.StatsString().c_str());
  std::printf("downstream: %s\n",
              ds.downstream_train_graph.StatsString().c_str());

  TablePrinter table({"Model", "Node classification AUC"});
  for (auto id : {bench::MethodId::kTgn, bench::MethodId::kCpdg}) {
    bench::MethodSpec method = id == bench::MethodId::kCpdg
                                   ? bench::MethodSpec::Cpdg()
                                   : bench::MethodSpec::Baseline(id);
    double auc = bench::RunNodeClassification(method, ds, scale, /*seed=*/2001);
    table.AddRow({bench::MethodName(id), TablePrinter::FormatFloat(auc)});
  }
  table.Print(std::cout);
  return 0;
}
