// Quickstart: pre-train a DGNN encoder with CPDG on a synthetic dynamic
// graph, fine-tune it for downstream dynamic link prediction with
// evolution-information-enhanced (EIE) fine-tuning, and evaluate.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "bench_common/experiment.h"
#include "core/finetuner.h"
#include "core/pretrainer.h"
#include "data/transfer.h"
#include "dgnn/encoder.h"
#include "eval/evaluators.h"
#include "util/rng.h"

int main() {
  using namespace cpdg;

  // 1) Build a small Amazon-like transfer benchmark: pre-train on the
  //    "Beauty" field's early period, fine-tune + test on its late period
  //    (the paper's *time transfer* setting).
  data::UniverseSpec spec = bench::ScaleSpec(data::MakeAmazonLike(), 0.3);
  data::TransferBenchmarkBuilder builder(spec, /*seed=*/42);
  data::TransferDataset dataset =
      builder.Build(data::TransferSetting::kTime, /*downstream_field=*/0);
  std::printf("pre-train graph:  %s\n",
              dataset.pretrain_graph.StatsString().c_str());
  std::printf("downstream graph: %s\n",
              dataset.downstream_train_graph.StatsString().c_str());

  // 2) Create a TGN encoder (Table III preset) over the shared node
  //    universe.
  Rng rng(7);
  dgnn::EncoderConfig config =
      dgnn::EncoderConfig::Preset(dgnn::EncoderType::kTgn, dataset.num_nodes);
  dgnn::DgnnEncoder encoder(config, &dataset.pretrain_graph, &rng);
  dgnn::LinkPredictor pretext_decoder(config.embed_dim, 32, &rng);

  // 3) CPDG pre-training: temporal contrast + structural contrast +
  //    link-prediction pretext (Eq. 17), recording memory checkpoints.
  core::CpdgConfig cpdg_config;
  cpdg_config.epochs = 2;
  cpdg_config.negative_pool = dataset.pretrain_negative_pool;
  core::CpdgPretrainer pretrainer(cpdg_config, &rng);
  core::PretrainResult pretrained =
      pretrainer.Pretrain(&encoder, &pretext_decoder, dataset.pretrain_graph);
  std::printf("pre-train loss: first=%.4f last=%.4f, checkpoints=%d\n",
              pretrained.log.epoch_losses.front(),
              pretrained.log.epoch_losses.back(),
              static_cast<int>(pretrained.checkpoints.num_checkpoints()));

  // 4) EIE-GRU fine-tuning on the downstream graph (Eq. 18-19).
  encoder.AttachGraph(&dataset.downstream_train_graph);
  core::FineTuneConfig ft;
  ft.train.epochs = 2;
  ft.train.negative_pool = dataset.downstream_negative_pool;
  ft.use_eie = true;
  ft.eie_variant = core::EieVariant::kGru;
  core::FineTunedModel model = core::FineTuneLinkPrediction(
      &encoder, dataset.downstream_train_graph, ft, &pretrained.checkpoints,
      &rng);

  // 5) Evaluate dynamic link prediction on held-out test events.
  eval::ScoreFn score = [&](const std::vector<graph::NodeId>& srcs,
                            const std::vector<graph::NodeId>& dsts,
                            const std::vector<double>& times) {
    return model.ScoreLogits(&encoder, srcs, dsts, times);
  };
  eval::EvaluateDynamicLinkPrediction(&encoder, score,
                                      dataset.downstream_val_events,
                                      dataset.downstream_negative_pool, 200,
                                      &rng);
  eval::LinkPredictionMetrics metrics = eval::EvaluateDynamicLinkPrediction(
      &encoder, score, dataset.downstream_test_events,
      dataset.downstream_negative_pool, 200, &rng);
  std::printf("dynamic link prediction: AUC=%.4f AP=%.4f (%lld events)\n",
              metrics.auc, metrics.ap,
              static_cast<long long>(metrics.num_scored_events));
  return 0;
}
