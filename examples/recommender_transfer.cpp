// Recommender field-transfer scenario (the Meituan-style motivation from
// the paper's introduction): pre-train CPDG on a large catalogue field,
// then transfer to two smaller downstream fields, comparing against
// training from scratch.
//
// This mirrors the *field transfer* and *time+field transfer* settings of
// Sec. V-C on the Amazon-like synthetic benchmark.

#include <cstdio>
#include <iostream>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "util/table_printer.h"

int main() {
  using namespace cpdg;

  bench::ExperimentScale scale;
  scale.num_seeds = 1;
  scale.pretrain_epochs = 3;
  scale.finetune_epochs = 3;

  data::UniverseSpec spec = bench::ScaleSpec(data::MakeAmazonLike(), 1.0);
  data::TransferBenchmarkBuilder builder(spec, /*seed=*/2024);

  TablePrinter table({"Downstream field", "Transfer", "Model", "AUC", "AP"});
  for (int64_t field = 0; field < 2; ++field) {
    for (auto setting :
         {data::TransferSetting::kField, data::TransferSetting::kTimeField}) {
      data::TransferDataset ds = builder.Build(setting, field);

      // From-scratch control: no pre-training at all.
      bench::MethodSpec scratch = bench::MethodSpec::Cpdg();
      scratch.pretrain = false;
      bench::LinkPredResult base =
          bench::RunLinkPrediction(scratch, ds, scale, /*seed=*/1);

      // CPDG pre-training + EIE fine-tuning.
      bench::LinkPredResult cpdg = bench::RunLinkPrediction(
          bench::MethodSpec::Cpdg(), ds, scale, /*seed=*/1);

      const char* field_name = spec.fields[field].name.c_str();
      table.AddRow({field_name, data::TransferSettingName(setting),
                    "from scratch", TablePrinter::FormatFloat(base.auc),
                    TablePrinter::FormatFloat(base.ap)});
      table.AddRow({field_name, data::TransferSettingName(setting),
                    "CPDG transfer", TablePrinter::FormatFloat(cpdg.auc),
                    TablePrinter::FormatFloat(cpdg.ap)});
      table.AddSeparator();
    }
  }
  std::printf("Field-transfer study (synthetic Amazon-like benchmark)\n");
  table.Print(std::cout);
  return 0;
}
