// Dataset and model I/O: generate a synthetic dynamic graph, persist it as
// CSV, reload it, pre-train a CPDG encoder, checkpoint the trained
// parameters to disk, and restore them into a fresh model — the workflow a
// production deployment uses to ship pre-trained encoders to downstream
// fine-tuning jobs.
//
// Also demonstrates the JODIE-format loader, which reads the published
// wikipedia.csv / mooc.csv / reddit.csv files directly if you have them:
//   auto graph = graph::LoadJodieGraph("wikipedia.csv").ValueOrDie();

#include <cstdio>

#include "graph/temporal_graph.h"
#include "core/pretrainer.h"
#include "data/generators.h"
#include "graph/io.h"
#include "tensor/serialization.h"
#include "util/rng.h"

int main() {
  using namespace cpdg;

  // 1) Generate and persist a dataset.
  data::UniverseSpec spec = data::MakeMeituanLike();
  spec.fields[0].num_events_early = 2000;
  data::DynamicGraphUniverse universe(spec, /*seed=*/11);
  std::vector<graph::Event> events = universe.EarlyEvents(0);
  const std::string csv_path = "/tmp/cpdg_example_events.csv";
  Status st = graph::WriteEventsCsv(csv_path, events);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu events to %s\n", events.size(), csv_path.c_str());

  // 2) Reload and rebuild the temporal graph.
  auto loaded = graph::ReadEventsCsv(csv_path);
  auto graph_result = graph::TemporalGraph::Create(universe.num_nodes(),
                                                   loaded.ValueOrDie());
  graph::TemporalGraph graph = graph_result.ValueOrDie();
  std::printf("reloaded: %s\n", graph.StatsString().c_str());

  // 3) Pre-train a CPDG encoder on the reloaded data.
  Rng rng(7);
  dgnn::EncoderConfig config =
      dgnn::EncoderConfig::Preset(dgnn::EncoderType::kTgn, graph.num_nodes());
  config.memory_dim = 16;
  config.embed_dim = 16;
  dgnn::DgnnEncoder encoder(config, &graph, &rng);
  dgnn::LinkPredictor decoder(16, 16, &rng);
  core::CpdgConfig cpdg_config;
  cpdg_config.epochs = 1;
  cpdg_config.negative_pool = universe.ItemPool(0);
  core::CpdgPretrainer pretrainer(cpdg_config, &rng);
  core::PretrainResult result =
      pretrainer.Pretrain(&encoder, &decoder, graph);
  std::printf("pre-trained: loss=%.4f, %lld parameters\n",
              result.log.final_loss(),
              static_cast<long long>(encoder.ParameterCount()));

  // 4) Checkpoint the encoder and restore it into a fresh instance.
  const std::string ckpt_path = "/tmp/cpdg_example_encoder.ckpt";
  st = tensor::SaveParameters(encoder, ckpt_path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  Rng rng2(999);  // different init: proves the load overwrites it
  dgnn::DgnnEncoder restored(config, &graph, &rng2);
  st = tensor::LoadParameters(&restored, ckpt_path);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 5) Verify: identical parameters produce identical memory evolution.
  encoder.memory().Reset();
  encoder.ReplayEvents(graph.events(), 200);
  restored.ReplayEvents(graph.events(), 200);
  std::printf("memory norm original=%.6f restored=%.6f\n",
              encoder.memory().StateNorm(), restored.memory().StateNorm());
  std::printf("checkpoint round-trip %s\n",
              std::abs(encoder.memory().StateNorm() -
                       restored.memory().StateNorm()) < 1e-3
                  ? "OK"
                  : "MISMATCH");
  return 0;
}
