// Encoder zoo: CPDG is encoder-agnostic (Sec. V-E / Table VIII). This
// example pre-trains the same CPDG objective on top of each of the three
// Table III backbones (JODIE, DyRep, TGN) and reports the downstream gain
// over vanilla task-supervised pre-training of the same backbone.

#include <cstdio>
#include <iostream>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "util/table_printer.h"

int main() {
  using namespace cpdg;

  bench::ExperimentScale scale;
  scale.num_seeds = 1;
  scale.pretrain_epochs = 2;
  scale.finetune_epochs = 2;

  data::UniverseSpec spec = bench::ScaleSpec(data::MakeAmazonLike(), 0.25);
  data::TransferBenchmarkBuilder builder(spec, /*seed=*/9);
  data::TransferDataset ds =
      builder.Build(data::TransferSetting::kTime, /*downstream_field=*/0);

  struct Row {
    bench::MethodId vanilla;
    dgnn::EncoderType backbone;
  };
  const Row rows[] = {
      {bench::MethodId::kJodie, dgnn::EncoderType::kJodie},
      {bench::MethodId::kDyRep, dgnn::EncoderType::kDyRep},
      {bench::MethodId::kTgn, dgnn::EncoderType::kTgn},
  };

  TablePrinter table({"Backbone", "Vanilla AUC", "with CPDG AUC", "Gain"});
  for (const Row& row : rows) {
    bench::LinkPredResult vanilla = bench::RunLinkPrediction(
        bench::MethodSpec::Baseline(row.vanilla), ds, scale, /*seed=*/5);
    bench::LinkPredResult cpdg = bench::RunLinkPrediction(
        bench::MethodSpec::Cpdg(row.backbone), ds, scale, /*seed=*/5);
    char gain[32];
    std::snprintf(gain, sizeof(gain), "%+.4f", cpdg.auc - vanilla.auc);
    table.AddRow({dgnn::EncoderTypeName(row.backbone),
                  TablePrinter::FormatFloat(vanilla.auc),
                  TablePrinter::FormatFloat(cpdg.auc), gain});
  }
  table.Print(std::cout);
  return 0;
}
